// 8x8 forward and inverse discrete cosine transform (type-II / type-III),
// the transform MPEG applies to every block (paper, Section 2). Implemented
// as two separable 1-D passes with a precomputed basis table; floating
// point, with the inverse rounding back to integers.
#pragma once

#include <array>
#include <cstdint>

namespace lsm::mpeg {

/// 8x8 block of spatial samples or residuals, row-major.
using Block = std::array<std::int16_t, 64>;
/// 8x8 block of transform coefficients, row-major.
using CoeffBlock = std::array<std::int16_t, 64>;

/// Forward DCT. Input samples are signed (residuals, or intra samples with
/// the 128 level shift already applied). Output coefficients are rounded to
/// the nearest integer; with 9-bit signed input they fit comfortably in
/// int16 (|coeff| <= 8 * 1024).
CoeffBlock forward_dct(const Block& spatial);

/// Inverse DCT, rounding to nearest integer.
Block inverse_dct(const CoeffBlock& coeffs);

/// SSE2 forward DCT, bitwise identical to forward_dct: each lane performs
/// the scalar loop's exact mul/add sequence (two lanes of adjacent outputs
/// share the ascending-index accumulation order, and SSE2 has no FMA to
/// contract it), so every double — and hence every rounded coefficient —
/// matches the reference. Falls back to forward_dct without SSE2.
CoeffBlock forward_dct_fast(const Block& spatial);

/// SSE2 inverse DCT, bitwise identical to inverse_dct (same argument).
Block inverse_dct_fast(const CoeffBlock& coeffs);

}  // namespace lsm::mpeg
