// Block-level helpers shared by the encoder and decoder so both sides
// compute the identical reconstruction (dequantize + IDCT + prediction +
// clamp). Block indices within a macroblock follow MPEG numbering:
// 0..3 = luma quadrants (top-left, top-right, bottom-left, bottom-right),
// 4 = Cb, 5 = Cr.
#pragma once

#include "mpeg/dct.h"
#include "mpeg/frame.h"
#include "mpeg/motion.h"
#include "mpeg/quant.h"

namespace lsm::mpeg::detail {

/// Differential-DC predictors for intracoded blocks. Luma blocks share one
/// predictor; each chroma plane has its own. Predictors reset to 0 (the
/// level-shifted mid-gray) at slice start and after any non-intra
/// macroblock.
struct DcPredictors {
  int y = 0;
  int cb = 0;
  int cr = 0;
  void reset() noexcept { y = cb = cr = 0; }
  int& of(int block) noexcept { return block < 4 ? y : (block == 4 ? cb : cr); }
};

/// Extracts 8x8 block `b` of a macroblock as signed samples (no shift).
Block block_of(const MacroblockPixels& mb, int b);

/// Writes clamped samples of block `b` into `frame` at macroblock
/// (mb_x, mb_y).
void store_block(Frame& frame, int mb_x, int mb_y, int b,
                 const Block& samples);

/// Intra reconstruction: dequantize, inverse DCT, undo the 128 level shift,
/// clamp to [0, 255].
Block reconstruct_intra(const CoeffBlock& levels, int quantizer_scale);

/// Inter reconstruction: prediction plus decoded residual, clamped.
Block reconstruct_inter(const Block& prediction, const CoeffBlock& levels,
                        int quantizer_scale);

/// Reconstructions on the SSE2 inverse DCT (inverse_dct_fast) — bitwise
/// identical to reconstruct_intra / reconstruct_inter (see dct.h). The
/// encoder's fast path uses these; the decoder keeps the reference path so
/// encoder-vs-decoder identity is exercised rather than assumed.
Block reconstruct_intra_fast(const CoeffBlock& levels, int quantizer_scale);
Block reconstruct_inter_fast(const Block& prediction, const CoeffBlock& levels,
                             int quantizer_scale);

/// Copies a whole prediction macroblock into the reconstruction frame.
void store_macroblock(Frame& frame, int mb_x, int mb_y,
                      const MacroblockPixels& mb);

}  // namespace lsm::mpeg::detail
