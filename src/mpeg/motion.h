// Motion estimation and compensation (paper, Section 2): P macroblocks are
// predicted from the preceding reference picture via a motion vector plus a
// coded error term; B macroblocks may use forward, backward, or interpolated
// (averaged) prediction. The search algorithm is implementation-defined by
// the standard; we use exhaustive full-pel search over a square window,
// minimizing luma SAD with a zero-vector preference.
#pragma once

#include <array>
#include <cstdint>

#include "mpeg/frame.h"

namespace lsm::mpeg {

/// Full-pel motion vector (luma units; chroma uses mv/2).
struct MotionVector {
  int dx = 0;
  int dy = 0;
  friend bool operator==(const MotionVector& a,
                         const MotionVector& b) = default;
};

/// Pixel content of one macroblock: 16x16 luma, 8x8 per chroma plane.
struct MacroblockPixels {
  std::array<std::uint8_t, 256> y{};
  std::array<std::uint8_t, 64> cb{};
  std::array<std::uint8_t, 64> cr{};
  friend bool operator==(const MacroblockPixels& a,
                         const MacroblockPixels& b) = default;
};

/// Extracts the macroblock at grid position (mb_x, mb_y) from `frame`,
/// displaced by `mv` (clamped at frame borders). mv = {0,0} reads the
/// colocated macroblock.
MacroblockPixels extract_macroblock(const Frame& frame, int mb_x, int mb_y,
                                    MotionVector mv = {});

/// Pixel-wise average (rounded) of two predictions — B interpolation.
MacroblockPixels average(const MacroblockPixels& a, const MacroblockPixels& b);

/// Sum of absolute luma differences between the macroblock at (mb_x, mb_y)
/// of `current` and the mv-displaced macroblock of `reference`.
int luma_sad(const Frame& current, const Frame& reference, int mb_x, int mb_y,
             MotionVector mv);

/// Result of a motion search.
struct MotionSearchResult {
  MotionVector mv;
  int sad = 0;
};

/// Exhaustive full-pel search over [-range, range]^2. Ties and near-ties
/// (within `zero_bias`) go to the zero vector, which costs fewest bits.
MotionSearchResult search_motion(const Frame& current, const Frame& reference,
                                 int mb_x, int mb_y, int range,
                                 int zero_bias = 128);

// ---- Half-pel motion (MPEG-1's actual precision) ----------------------
//
// In the functions below MotionVector components are in HALF-pel units:
// (2, 0) moves one full luma pixel right, (1, 0) moves half a pixel and
// samples are bilinearly interpolated (averaged with round-half-up, as in
// ISO 11172-2). Chroma displacement is the luma vector divided by two
// (truncation toward zero), also in half-pel units of the chroma plane.

/// Extracts a macroblock displaced by a half-pel vector.
MacroblockPixels extract_macroblock_halfpel(const Frame& frame, int mb_x,
                                            int mb_y, MotionVector half_pel);

/// Luma SAD against a half-pel displaced reference macroblock.
int luma_sad_halfpel(const Frame& current, const Frame& reference, int mb_x,
                     int mb_y, MotionVector half_pel);

/// Two-stage search: exhaustive full-pel over [-range, range]^2 followed by
/// +-1 half-pel refinement. The returned vector is in half-pel units.
MotionSearchResult search_motion_halfpel(const Frame& current,
                                         const Frame& reference, int mb_x,
                                         int mb_y, int range,
                                         int zero_bias = 128);

// ---- Packed-SAD fast path (SSE2; see mpeg/fastpath.h) ------------------
//
// Candidates whose reference window lies fully inside the frame — where
// at_clamped never clamps — run on _mm_sad_epu8 row kernels; border
// candidates fall back to the scalar loops, so results are identical
// everywhere. The `stop_at` cutoff enables monotone early termination:
// SAD is a sum of non-negative row terms, so once a partial sum reaches
// `stop_at` the true SAD is >= stop_at and the function may return the
// partial instead. A caller comparing `sad < best` and passing best as
// stop_at therefore accepts exactly the candidates the scalar search
// accepts, with exactly the scalar SAD values — argmin and the
// zero-vector tie-break are preserved (DESIGN.md §3.4).

/// Exact luma_sad when the cutoff is not reached; any value >= stop_at
/// once it is. stop_at = INT_MAX computes the exact SAD unconditionally.
int luma_sad_fast(const Frame& current, const Frame& reference, int mb_x,
                  int mb_y, MotionVector mv, int stop_at = 0x7FFFFFFF);

/// Half-pel counterpart of luma_sad_fast (same cutoff contract).
int luma_sad_halfpel_fast(const Frame& current, const Frame& reference,
                          int mb_x, int mb_y, MotionVector half_pel,
                          int stop_at = 0x7FFFFFFF);

/// SAD of two macroblocks' luma planes (B-interpolation cost), exact.
int macroblock_luma_sad_fast(const MacroblockPixels& a,
                             const MacroblockPixels& b);

/// Pixel-wise average via _mm_avg_epu8 — identical rounding to average().
MacroblockPixels average_fast(const MacroblockPixels& a,
                              const MacroblockPixels& b);

/// Same candidate order, tie-breaks, and returned (mv, sad) as
/// search_motion / search_motion_halfpel, on the packed-SAD kernels with
/// early termination.
MotionSearchResult search_motion_fast(const Frame& current,
                                      const Frame& reference, int mb_x,
                                      int mb_y, int range,
                                      int zero_bias = 128);
MotionSearchResult search_motion_halfpel_fast(const Frame& current,
                                              const Frame& reference,
                                              int mb_x, int mb_y, int range,
                                              int zero_bias = 128);

/// extract_macroblock_halfpel with SSE2 bilinear rows for interior luma
/// (borders and chroma use the scalar path); identical output everywhere.
MacroblockPixels extract_macroblock_halfpel_fast(const Frame& frame,
                                                 int mb_x, int mb_y,
                                                 MotionVector half_pel);

}  // namespace lsm::mpeg
