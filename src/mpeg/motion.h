// Motion estimation and compensation (paper, Section 2): P macroblocks are
// predicted from the preceding reference picture via a motion vector plus a
// coded error term; B macroblocks may use forward, backward, or interpolated
// (averaged) prediction. The search algorithm is implementation-defined by
// the standard; we use exhaustive full-pel search over a square window,
// minimizing luma SAD with a zero-vector preference.
#pragma once

#include <array>
#include <cstdint>

#include "mpeg/frame.h"

namespace lsm::mpeg {

/// Full-pel motion vector (luma units; chroma uses mv/2).
struct MotionVector {
  int dx = 0;
  int dy = 0;
  friend bool operator==(const MotionVector& a,
                         const MotionVector& b) = default;
};

/// Pixel content of one macroblock: 16x16 luma, 8x8 per chroma plane.
struct MacroblockPixels {
  std::array<std::uint8_t, 256> y{};
  std::array<std::uint8_t, 64> cb{};
  std::array<std::uint8_t, 64> cr{};
};

/// Extracts the macroblock at grid position (mb_x, mb_y) from `frame`,
/// displaced by `mv` (clamped at frame borders). mv = {0,0} reads the
/// colocated macroblock.
MacroblockPixels extract_macroblock(const Frame& frame, int mb_x, int mb_y,
                                    MotionVector mv = {});

/// Pixel-wise average (rounded) of two predictions — B interpolation.
MacroblockPixels average(const MacroblockPixels& a, const MacroblockPixels& b);

/// Sum of absolute luma differences between the macroblock at (mb_x, mb_y)
/// of `current` and the mv-displaced macroblock of `reference`.
int luma_sad(const Frame& current, const Frame& reference, int mb_x, int mb_y,
             MotionVector mv);

/// Result of a motion search.
struct MotionSearchResult {
  MotionVector mv;
  int sad = 0;
};

/// Exhaustive full-pel search over [-range, range]^2. Ties and near-ties
/// (within `zero_bias`) go to the zero vector, which costs fewest bits.
MotionSearchResult search_motion(const Frame& current, const Frame& reference,
                                 int mb_x, int mb_y, int range,
                                 int zero_bias = 128);

// ---- Half-pel motion (MPEG-1's actual precision) ----------------------
//
// In the functions below MotionVector components are in HALF-pel units:
// (2, 0) moves one full luma pixel right, (1, 0) moves half a pixel and
// samples are bilinearly interpolated (averaged with round-half-up, as in
// ISO 11172-2). Chroma displacement is the luma vector divided by two
// (truncation toward zero), also in half-pel units of the chroma plane.

/// Extracts a macroblock displaced by a half-pel vector.
MacroblockPixels extract_macroblock_halfpel(const Frame& frame, int mb_x,
                                            int mb_y, MotionVector half_pel);

/// Luma SAD against a half-pel displaced reference macroblock.
int luma_sad_halfpel(const Frame& current, const Frame& reference, int mb_x,
                     int mb_y, MotionVector half_pel);

/// Two-stage search: exhaustive full-pel over [-range, range]^2 followed by
/// +-1 half-pel refinement. The returned vector is in half-pel units.
MotionSearchResult search_motion_halfpel(const Frame& current,
                                         const Frame& reference, int mb_x,
                                         int mb_y, int range,
                                         int zero_bias = 128);

}  // namespace lsm::mpeg
