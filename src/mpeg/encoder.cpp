#include "mpeg/encoder.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <optional>
#include <stdexcept>

#include "mpeg/coding.h"
#include "mpeg/vlc.h"
#include "trace/reorder.h"

namespace lsm::mpeg {

namespace {

using detail::DcPredictors;
using lsm::trace::PictureType;

/// An encoded reference picture (reconstruction plus display position).
struct Anchor {
  Frame recon;
  int display_index = -1;
};

/// Per-slice mutable coding state.
struct SliceState {
  DcPredictors dc;
  MotionVector mv_pred_f;
  MotionVector mv_pred_b;
  void reset() {
    dc.reset();
    mv_pred_f = MotionVector{};
    mv_pred_b = MotionVector{};
  }
};

/// Quantizes all 6 blocks of an inter residual; returns the coded-block
/// pattern (bit 5-b set if block b has any nonzero level, matching MPEG's
/// MSB-first CBP order Y0 Y1 Y2 Y3 Cb Cr). kFast selects the SIMD kernels,
/// which are bitwise identical to the scalar ones (fastpath.h).
template <bool kFast>
std::uint32_t quantize_residual(const MacroblockPixels& current,
                                const MacroblockPixels& prediction,
                                int qscale,
                                std::array<CoeffBlock, 6>& levels) {
  std::uint32_t cbp = 0;
  for (int b = 0; b < 6; ++b) {
    const Block cur = detail::block_of(current, b);
    const Block pred = detail::block_of(prediction, b);
    Block residual{};
    for (std::size_t k = 0; k < 64; ++k) {
      residual[k] = static_cast<std::int16_t>(cur[k] - pred[k]);
    }
    levels[static_cast<std::size_t>(b)] =
        kFast ? quantize_inter_fast(forward_dct_fast(residual), qscale)
              : quantize_inter(forward_dct(residual), qscale);
    const auto& lv = levels[static_cast<std::size_t>(b)];
    const bool coded = std::any_of(lv.begin(), lv.end(),
                                   [](std::int16_t v) { return v != 0; });
    if (coded) cbp |= 1u << (5 - b);
  }
  return cbp;
}

/// Writes an intracoded macroblock (blocks + differential DC) and stores its
/// reconstruction.
template <bool kFast>
void code_intra_macroblock(BitWriter& writer, SliceState& state,
                           const MacroblockPixels& current, int qscale,
                           Frame& recon, int mb_x, int mb_y) {
  for (int b = 0; b < 6; ++b) {
    Block samples = detail::block_of(current, b);
    for (auto& s : samples) s = static_cast<std::int16_t>(s - 128);
    const CoeffBlock levels =
        kFast ? quantize_intra_fast(forward_dct_fast(samples), qscale)
              : quantize_intra(forward_dct(samples), qscale);
    int& predictor = state.dc.of(b);
    const int dc_diff = levels[0] - predictor;
    predictor = levels[0];
    put_block(writer, static_cast<std::int16_t>(dc_diff),
              run_length_encode(levels));
    detail::store_block(recon, mb_x, mb_y, b,
                        kFast ? detail::reconstruct_intra_fast(levels, qscale)
                              : detail::reconstruct_intra(levels, qscale));
  }
}

/// Writes CBP plus the coded residual blocks and stores the reconstruction.
template <bool kFast>
void code_inter_blocks(BitWriter& writer, std::uint32_t cbp,
                       const std::array<CoeffBlock, 6>& levels,
                       const MacroblockPixels& prediction, int qscale,
                       Frame& recon, int mb_x, int mb_y) {
  writer.put_bits(cbp, 6);
  for (int b = 0; b < 6; ++b) {
    const Block pred = detail::block_of(prediction, b);
    if (cbp & (1u << (5 - b))) {
      const auto& lv = levels[static_cast<std::size_t>(b)];
      put_block(writer, lv[0], run_length_encode(lv));
      detail::store_block(
          recon, mb_x, mb_y, b,
          kFast ? detail::reconstruct_inter_fast(pred, lv, qscale)
                : detail::reconstruct_inter(pred, lv, qscale));
    } else {
      detail::store_block(recon, mb_x, mb_y, b, pred);
    }
  }
}

/// Everything one slice row needs; shared read-only across rows except
/// `recon`, whose writes are row-disjoint (store_block/store_macroblock
/// touch only rows mb_y*16..mb_y*16+15 of luma and the matching chroma),
/// so concurrent slice encoding is race-free.
struct PictureContext {
  const EncoderConfig& config;
  const Frame& source;
  const Anchor* forward_ref;
  const Anchor* backward_ref;
  PictureType type;
  int qscale;
  int mb_cols;
  Frame& recon;
};

/// Encodes slice row `mb_y` into `writer`. The body is the former inline
/// slice loop of Encoder::encode, verbatim except that every kernel call
/// dispatches on kFast; with kFast = false the emitted bits are the
/// reference bits, with kFast = true they are identical by the kernel
/// identities (DESIGN.md §3.4).
template <bool kFast>
void encode_slice_row(const PictureContext& ctx, int mb_y, BitWriter& writer) {
  writer.put_bits(static_cast<std::uint32_t>(ctx.qscale), 5);
  SliceState state;
  state.reset();
  const int qscale = ctx.qscale;
  Frame& recon = ctx.recon;

  for (int mb_x = 0; mb_x < ctx.mb_cols; ++mb_x) {
    const MacroblockPixels current =
        extract_macroblock(ctx.source, mb_x, mb_y);

    if (ctx.type == PictureType::I) {
      code_intra_macroblock<kFast>(writer, state, current, qscale, recon,
                                   mb_x, mb_y);
      continue;
    }

    // All motion vectors below are in half-pel units (see motion.h).
    auto search = [&](const Frame& reference) {
      if (ctx.config.half_pel) {
        return kFast ? search_motion_halfpel_fast(ctx.source, reference, mb_x,
                                                  mb_y,
                                                  ctx.config.search_range)
                     : search_motion_halfpel(ctx.source, reference, mb_x,
                                             mb_y, ctx.config.search_range);
      }
      MotionSearchResult full =
          kFast ? search_motion_fast(ctx.source, reference, mb_x, mb_y,
                                     ctx.config.search_range)
                : search_motion(ctx.source, reference, mb_x, mb_y,
                                ctx.config.search_range);
      full.mv = MotionVector{2 * full.mv.dx, 2 * full.mv.dy};
      return full;
    };
    auto extract_pred = [&](const Frame& reference, MotionVector mv) {
      return kFast ? extract_macroblock_halfpel_fast(reference, mb_x, mb_y, mv)
                   : extract_macroblock_halfpel(reference, mb_x, mb_y, mv);
    };

    if (ctx.type == PictureType::P) {
      const MotionSearchResult best = search(ctx.forward_ref->recon);
      if (best.sad > ctx.config.intra_sad_threshold) {
        put_ue(writer, mb_mode::kPIntra);
        code_intra_macroblock<kFast>(writer, state, current, qscale, recon,
                                     mb_x, mb_y);
        state.mv_pred_f = MotionVector{};
        continue;
      }
      const MacroblockPixels prediction =
          extract_pred(ctx.forward_ref->recon, best.mv);
      std::array<CoeffBlock, 6> levels;
      const std::uint32_t cbp =
          quantize_residual<kFast>(current, prediction, qscale, levels);
      state.dc.reset();
      if (cbp == 0 && best.mv == MotionVector{}) {
        put_ue(writer, mb_mode::kPSkip);
        detail::store_macroblock(recon, mb_x, mb_y, prediction);
        state.mv_pred_f = MotionVector{};
        continue;
      }
      put_ue(writer, mb_mode::kPInter);
      put_se(writer, best.mv.dx - state.mv_pred_f.dx);
      put_se(writer, best.mv.dy - state.mv_pred_f.dy);
      state.mv_pred_f = best.mv;
      code_inter_blocks<kFast>(writer, cbp, levels, prediction, qscale, recon,
                               mb_x, mb_y);
      continue;
    }

    // B picture.
    const MotionSearchResult fwd = search(ctx.forward_ref->recon);
    MotionSearchResult bwd;
    int interp_sad = std::numeric_limits<int>::max();
    MacroblockPixels pred_f = extract_pred(ctx.forward_ref->recon, fwd.mv);
    MacroblockPixels pred_b;
    MacroblockPixels pred_i;
    if (ctx.backward_ref != nullptr) {
      bwd = search(ctx.backward_ref->recon);
      pred_b = extract_pred(ctx.backward_ref->recon, bwd.mv);
      if (kFast) {
        pred_i = average_fast(pred_f, pred_b);
        interp_sad = macroblock_luma_sad_fast(current, pred_i);
      } else {
        pred_i = average(pred_f, pred_b);
        interp_sad = 0;
        for (int y = 0; y < 16; ++y) {
          for (int x = 0; x < 16; ++x) {
            const int a = current.y[static_cast<std::size_t>(y * 16 + x)];
            const int b = pred_i.y[static_cast<std::size_t>(y * 16 + x)];
            interp_sad += std::abs(a - b);
          }
        }
      }
    }

    std::uint32_t mode = mb_mode::kBForward;
    int best_sad = fwd.sad;
    if (ctx.backward_ref != nullptr) {
      if (bwd.sad < best_sad) {
        mode = mb_mode::kBBackward;
        best_sad = bwd.sad;
      }
      if (interp_sad < best_sad) {
        mode = mb_mode::kBInterpolated;
        best_sad = interp_sad;
      }
    }
    if (best_sad > ctx.config.intra_sad_threshold) {
      put_ue(writer, mb_mode::kBIntra);
      code_intra_macroblock<kFast>(writer, state, current, qscale, recon,
                                   mb_x, mb_y);
      state.mv_pred_f = MotionVector{};
      state.mv_pred_b = MotionVector{};
      continue;
    }

    const MacroblockPixels& prediction =
        mode == mb_mode::kBForward    ? pred_f
        : mode == mb_mode::kBBackward ? pred_b
                                      : pred_i;
    put_ue(writer, mode);
    if (mode != mb_mode::kBBackward) {
      put_se(writer, fwd.mv.dx - state.mv_pred_f.dx);
      put_se(writer, fwd.mv.dy - state.mv_pred_f.dy);
      state.mv_pred_f = fwd.mv;
    }
    if (mode != mb_mode::kBForward) {
      put_se(writer, bwd.mv.dx - state.mv_pred_b.dx);
      put_se(writer, bwd.mv.dy - state.mv_pred_b.dy);
      state.mv_pred_b = bwd.mv;
    }
    std::array<CoeffBlock, 6> levels;
    const std::uint32_t cbp =
        quantize_residual<kFast>(current, prediction, qscale, levels);
    state.dc.reset();
    code_inter_blocks<kFast>(writer, cbp, levels, prediction, qscale, recon,
                             mb_x, mb_y);
  }
}

}  // namespace

Encoder::Encoder(EncoderConfig config) : config_(std::move(config)) {
  if (config_.fps < 1 || config_.fps > 255) {
    throw std::invalid_argument("Encoder: fps out of range");
  }
  for (const int q : {config_.i_quant, config_.p_quant, config_.b_quant}) {
    if (q < 1 || q > 31) {
      throw std::invalid_argument("Encoder: quantizer scale out of [1,31]");
    }
  }
  if (config_.search_range < 0 || config_.search_range > 64) {
    throw std::invalid_argument("Encoder: bad search range");
  }
  for (const int q : config_.per_picture_quant) {
    if (q < 0 || q > 31) {
      throw std::invalid_argument("Encoder: bad per-picture quant override");
    }
  }
}

EncodeResult Encoder::encode(const std::vector<Frame>& display_frames) const {
  if (display_frames.empty()) {
    throw std::invalid_argument("Encoder::encode: no frames");
  }
  const int width = display_frames.front().width();
  const int height = display_frames.front().height();
  for (const Frame& frame : display_frames) {
    if (frame.width() != width || frame.height() != height) {
      throw std::invalid_argument("Encoder::encode: frame size mismatch");
    }
  }
  const int mb_cols = width / 16;
  const int mb_rows = height / 16;
  if (mb_rows > startcode::kSliceLast - startcode::kSliceFirst) {
    throw std::invalid_argument("Encoder::encode: too many slice rows");
  }

  const int n = static_cast<int>(display_frames.size());
  std::vector<PictureType> types;
  types.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) types.push_back(config_.pattern.type_of(i));
  const std::vector<int> order =
      lsm::trace::display_to_coded_permutation(types);

  EncodeResult result;
  result.sequence_header = SequenceHeader{
      width, height, config_.fps, config_.pattern.N(), config_.pattern.M()};
  {
    BitWriter writer;
    write_fields(writer, result.sequence_header);
    append_unit(result.stream, startcode::kSequenceHeader, writer.take());
  }

  std::optional<Anchor> older;
  std::optional<Anchor> newer;
  int gop_counter = 0;

  const bool fast = config_.path == EncoderPath::kAuto && simd_available();
  // Per-row payload size of the previous picture — the reservation hint for
  // the next picture's same-row writer (consecutive pictures have similar
  // slice sizes; see bits.h BitWriter::reserve).
  std::vector<std::size_t> prev_slice_bytes(static_cast<std::size_t>(mb_rows),
                                            0);

  for (int ci = 0; ci < n; ++ci) {
    const int di = order[static_cast<std::size_t>(ci)];
    const PictureType type = types[static_cast<std::size_t>(di)];
    const Frame& source = display_frames[static_cast<std::size_t>(di)];

    if (type == PictureType::I) {
      BitWriter writer;
      write_fields(writer, GroupHeader{gop_counter++ & 0xFFFF, true});
      append_unit(result.stream, startcode::kGroup, writer.take());
    }

    int qscale = type == PictureType::I   ? config_.i_quant
                 : type == PictureType::P ? config_.p_quant
                                          : config_.b_quant;
    if (!config_.per_picture_quant.empty()) {
      if (config_.per_picture_quant.size() != static_cast<std::size_t>(n)) {
        throw std::invalid_argument(
            "Encoder: per-picture quant override length mismatch");
      }
      const int override_q =
          config_.per_picture_quant[static_cast<std::size_t>(di)];
      if (override_q != 0) qscale = override_q;
    }
    const std::int64_t offset_before =
        static_cast<std::int64_t>(result.stream.size());
    {
      BitWriter writer;
      write_fields(writer, PictureHeader{di & 0xFFFF, type, qscale});
      append_unit(result.stream, startcode::kPicture, writer.take());
    }

    // Reference selection for this picture.
    const Anchor* forward_ref = nullptr;
    const Anchor* backward_ref = nullptr;
    if (type == PictureType::P) {
      if (!newer) {
        throw std::invalid_argument(
            "Encoder::encode: P picture without a reference (sequence must "
            "start with I)");
      }
      forward_ref = &*newer;
    } else if (type == PictureType::B) {
      if (!newer) {
        throw std::invalid_argument(
            "Encoder::encode: B picture without any reference");
      }
      if (di > newer->display_index) {
        forward_ref = &*newer;  // trailing B: forward prediction only
      } else {
        forward_ref = older ? &*older : &*newer;
        backward_ref = &*newer;
      }
    }

    Frame recon(width, height);
    const PictureContext ctx{config_, source,  forward_ref, backward_ref,
                             type,    qscale,  mb_cols,     recon};

    // Each slice row encodes into a private writer (reserved from the
    // previous picture's same-row payload size), possibly concurrently;
    // payloads are then spliced in row order, so the stream bytes are
    // independent of the executor and thread count.
    std::vector<std::vector<std::uint8_t>> payloads(
        static_cast<std::size_t>(mb_rows));
    auto encode_row = [&](int mb_y) {
      BitWriter writer;
      writer.reserve(prev_slice_bytes[static_cast<std::size_t>(mb_y)] + 16);
      if (fast) {
        encode_slice_row<true>(ctx, mb_y, writer);
      } else {
        encode_slice_row<false>(ctx, mb_y, writer);
      }
      payloads[static_cast<std::size_t>(mb_y)] = writer.take();
    };
    if (config_.slice_executor) {
      config_.slice_executor(mb_rows, encode_row);
    } else {
      for (int mb_y = 0; mb_y < mb_rows; ++mb_y) encode_row(mb_y);
    }
    for (int mb_y = 0; mb_y < mb_rows; ++mb_y) {
      auto& payload = payloads[static_cast<std::size_t>(mb_y)];
      prev_slice_bytes[static_cast<std::size_t>(mb_y)] = payload.size();
      append_unit(result.stream,
                  static_cast<std::uint8_t>(startcode::kSliceFirst + mb_y),
                  std::move(payload));
    }

    EncodedPicture record;
    record.display_index = di;
    record.coded_index = ci;
    record.type = type;
    record.bits =
        (static_cast<std::int64_t>(result.stream.size()) - offset_before) * 8;
    const bool have_recon =
        type != PictureType::B || config_.reconstruct_b;
    record.psnr_y = have_recon ? psnr_y(source, recon) : 0.0;
    result.pictures.push_back(record);

    if (type != PictureType::B) {
      older = std::move(newer);
      newer = Anchor{std::move(recon), di};
    }
  }

  append_start_code(result.stream, startcode::kSequenceEnd);
  return result;
}

lsm::trace::Trace EncodeResult::display_trace(const std::string& name) const {
  std::vector<lsm::trace::Bits> sizes(pictures.size(), 0);
  std::vector<lsm::trace::PictureType> types(pictures.size(),
                                             lsm::trace::PictureType::I);
  for (const EncodedPicture& picture : pictures) {
    sizes[static_cast<std::size_t>(picture.display_index)] = picture.bits;
    types[static_cast<std::size_t>(picture.display_index)] = picture.type;
  }
  return lsm::trace::Trace(
      name,
      lsm::trace::GopPattern(sequence_header.gop_n, sequence_header.gop_m),
      std::move(sizes), std::move(types), 1.0 / sequence_header.fps,
      sequence_header.width, sequence_header.height);
}

lsm::trace::Trace EncodeResult::coded_trace(const std::string& name) const {
  std::vector<lsm::trace::Bits> sizes;
  std::vector<lsm::trace::PictureType> types;
  sizes.reserve(pictures.size());
  for (const EncodedPicture& picture : pictures) {
    sizes.push_back(picture.bits);
    types.push_back(picture.type);
  }
  return lsm::trace::Trace(
      name,
      lsm::trace::GopPattern(sequence_header.gop_n, sequence_header.gop_m),
      std::move(sizes), std::move(types), 1.0 / sequence_header.fps,
      sequence_header.width, sequence_header.height);
}

}  // namespace lsm::mpeg
