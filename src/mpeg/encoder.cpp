#include "mpeg/encoder.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "mpeg/coding.h"
#include "mpeg/vlc.h"
#include "trace/reorder.h"

namespace lsm::mpeg {

namespace {

using detail::DcPredictors;
using lsm::trace::PictureType;

/// Per-slice mutable coding state.
struct SliceState {
  DcPredictors dc;
  MotionVector mv_pred_f;
  MotionVector mv_pred_b;
  void reset() {
    dc.reset();
    mv_pred_f = MotionVector{};
    mv_pred_b = MotionVector{};
  }
};

/// Quantizes all 6 blocks of an inter residual; returns the coded-block
/// pattern (bit 5-b set if block b has any nonzero level, matching MPEG's
/// MSB-first CBP order Y0 Y1 Y2 Y3 Cb Cr). kFast selects the SIMD kernels,
/// which are bitwise identical to the scalar ones (fastpath.h).
template <bool kFast>
std::uint32_t quantize_residual(const MacroblockPixels& current,
                                const MacroblockPixels& prediction,
                                int qscale,
                                std::array<CoeffBlock, 6>& levels) {
  std::uint32_t cbp = 0;
  for (int b = 0; b < 6; ++b) {
    const Block cur = detail::block_of(current, b);
    const Block pred = detail::block_of(prediction, b);
    Block residual{};
    std::int16_t nonzero = 0;
    for (std::size_t k = 0; k < 64; ++k) {
      residual[k] = static_cast<std::int16_t>(cur[k] - pred[k]);
      nonzero = static_cast<std::int16_t>(nonzero | residual[k]);
    }
    if (nonzero == 0) {
      // DCT of the zero block is exactly zero and quantization maps zero
      // levels to zero, so the kernel call can be skipped outright; the
      // coded-block-pattern bit stays clear either way.
      levels[static_cast<std::size_t>(b)] = CoeffBlock{};
      continue;
    }
    levels[static_cast<std::size_t>(b)] =
        kFast ? dct_quantize_inter_fast(residual, qscale)
              : quantize_inter(forward_dct(residual), qscale);
    const auto& lv = levels[static_cast<std::size_t>(b)];
    const bool coded = std::any_of(lv.begin(), lv.end(),
                                   [](std::int16_t v) { return v != 0; });
    if (coded) cbp |= 1u << (5 - b);
  }
  return cbp;
}

/// Writes an intracoded macroblock (blocks + differential DC) and stores its
/// reconstruction.
template <bool kFast>
void code_intra_macroblock(BitWriter& writer, SliceState& state,
                           const MacroblockPixels& current, int qscale,
                           Frame& recon, int mb_x, int mb_y) {
  for (int b = 0; b < 6; ++b) {
    Block samples = detail::block_of(current, b);
    for (auto& s : samples) s = static_cast<std::int16_t>(s - 128);
    const CoeffBlock levels =
        kFast ? dct_quantize_intra_fast(samples, qscale)
              : quantize_intra(forward_dct(samples), qscale);
    int& predictor = state.dc.of(b);
    const int dc_diff = levels[0] - predictor;
    predictor = levels[0];
    RunLevel ac[kMaxRunLevels];
    put_block(writer, static_cast<std::int16_t>(dc_diff), ac,
              run_length_encode_into(levels, ac));
    detail::store_block(recon, mb_x, mb_y, b,
                        kFast ? detail::reconstruct_intra_fast(levels, qscale)
                              : detail::reconstruct_intra(levels, qscale));
  }
}

/// Writes CBP plus the coded residual blocks and stores the reconstruction.
template <bool kFast>
void code_inter_blocks(BitWriter& writer, std::uint32_t cbp,
                       const std::array<CoeffBlock, 6>& levels,
                       const MacroblockPixels& prediction, int qscale,
                       Frame& recon, int mb_x, int mb_y) {
  writer.put_bits(cbp, 6);
  for (int b = 0; b < 6; ++b) {
    const Block pred = detail::block_of(prediction, b);
    if (cbp & (1u << (5 - b))) {
      const auto& lv = levels[static_cast<std::size_t>(b)];
      RunLevel ac[kMaxRunLevels];
      put_block(writer, lv[0], ac, run_length_encode_into(lv, ac));
      detail::store_block(
          recon, mb_x, mb_y, b,
          kFast ? detail::reconstruct_inter_fast(pred, lv, qscale)
                : detail::reconstruct_inter(pred, lv, qscale));
    } else {
      detail::store_block(recon, mb_x, mb_y, b, pred);
    }
  }
}

/// Everything one slice row needs; shared read-only across rows except
/// `recon`, whose writes are row-disjoint (store_block/store_macroblock
/// touch only rows mb_y*16..mb_y*16+15 of luma and the matching chroma),
/// so concurrent slice encoding is race-free.
struct PictureContext {
  const EncoderConfig& config;
  const Frame& source;
  const Frame* forward_ref;
  const Frame* backward_ref;
  PictureType type;
  int qscale;
  int mb_cols;
  Frame& recon;
};

/// Encodes slice row `mb_y` into `writer`. The body is the former inline
/// slice loop of Encoder::encode, verbatim except that every kernel call
/// dispatches on kFast; with kFast = false the emitted bits are the
/// reference bits, with kFast = true they are identical by the kernel
/// identities (DESIGN.md §3.4).
template <bool kFast>
void encode_slice_row(const PictureContext& ctx, int mb_y, BitWriter& writer) {
  writer.put_bits(static_cast<std::uint32_t>(ctx.qscale), 5);
  SliceState state;
  state.reset();
  const int qscale = ctx.qscale;
  Frame& recon = ctx.recon;

  for (int mb_x = 0; mb_x < ctx.mb_cols; ++mb_x) {
    const MacroblockPixels current =
        extract_macroblock(ctx.source, mb_x, mb_y);

    if (ctx.type == PictureType::I) {
      code_intra_macroblock<kFast>(writer, state, current, qscale, recon,
                                   mb_x, mb_y);
      continue;
    }

    // All motion vectors below are in half-pel units (see motion.h).
    auto search = [&](const Frame& reference) {
      if (ctx.config.half_pel) {
        return kFast ? search_motion_halfpel_fast(ctx.source, reference, mb_x,
                                                  mb_y,
                                                  ctx.config.search_range)
                     : search_motion_halfpel(ctx.source, reference, mb_x,
                                             mb_y, ctx.config.search_range);
      }
      MotionSearchResult full =
          kFast ? search_motion_fast(ctx.source, reference, mb_x, mb_y,
                                     ctx.config.search_range)
                : search_motion(ctx.source, reference, mb_x, mb_y,
                                ctx.config.search_range);
      full.mv = MotionVector{2 * full.mv.dx, 2 * full.mv.dy};
      return full;
    };
    auto extract_pred = [&](const Frame& reference, MotionVector mv) {
      return kFast ? extract_macroblock_halfpel_fast(reference, mb_x, mb_y, mv)
                   : extract_macroblock_halfpel(reference, mb_x, mb_y, mv);
    };

    if (ctx.type == PictureType::P) {
      const MotionSearchResult best = search(*ctx.forward_ref);
      if (best.sad > ctx.config.intra_sad_threshold) {
        put_ue(writer, mb_mode::kPIntra);
        code_intra_macroblock<kFast>(writer, state, current, qscale, recon,
                                     mb_x, mb_y);
        state.mv_pred_f = MotionVector{};
        continue;
      }
      const MacroblockPixels prediction =
          extract_pred(*ctx.forward_ref, best.mv);
      std::array<CoeffBlock, 6> levels;
      const std::uint32_t cbp =
          quantize_residual<kFast>(current, prediction, qscale, levels);
      state.dc.reset();
      if (cbp == 0 && best.mv == MotionVector{}) {
        put_ue(writer, mb_mode::kPSkip);
        detail::store_macroblock(recon, mb_x, mb_y, prediction);
        state.mv_pred_f = MotionVector{};
        continue;
      }
      put_ue(writer, mb_mode::kPInter);
      put_se(writer, best.mv.dx - state.mv_pred_f.dx);
      put_se(writer, best.mv.dy - state.mv_pred_f.dy);
      state.mv_pred_f = best.mv;
      code_inter_blocks<kFast>(writer, cbp, levels, prediction, qscale, recon,
                               mb_x, mb_y);
      continue;
    }

    // B picture.
    const MotionSearchResult fwd = search(*ctx.forward_ref);
    MotionSearchResult bwd;
    int interp_sad = std::numeric_limits<int>::max();
    MacroblockPixels pred_f = extract_pred(*ctx.forward_ref, fwd.mv);
    MacroblockPixels pred_b;
    MacroblockPixels pred_i;
    if (ctx.backward_ref != nullptr) {
      bwd = search(*ctx.backward_ref);
      pred_b = extract_pred(*ctx.backward_ref, bwd.mv);
      if (kFast) {
        pred_i = average_fast(pred_f, pred_b);
        interp_sad = macroblock_luma_sad_fast(current, pred_i);
      } else {
        pred_i = average(pred_f, pred_b);
        interp_sad = 0;
        for (int y = 0; y < 16; ++y) {
          for (int x = 0; x < 16; ++x) {
            const int a = current.y[static_cast<std::size_t>(y * 16 + x)];
            const int b = pred_i.y[static_cast<std::size_t>(y * 16 + x)];
            interp_sad += std::abs(a - b);
          }
        }
      }
    }

    std::uint32_t mode = mb_mode::kBForward;
    int best_sad = fwd.sad;
    if (ctx.backward_ref != nullptr) {
      if (bwd.sad < best_sad) {
        mode = mb_mode::kBBackward;
        best_sad = bwd.sad;
      }
      if (interp_sad < best_sad) {
        mode = mb_mode::kBInterpolated;
        best_sad = interp_sad;
      }
    }
    if (best_sad > ctx.config.intra_sad_threshold) {
      put_ue(writer, mb_mode::kBIntra);
      code_intra_macroblock<kFast>(writer, state, current, qscale, recon,
                                   mb_x, mb_y);
      state.mv_pred_f = MotionVector{};
      state.mv_pred_b = MotionVector{};
      continue;
    }

    const MacroblockPixels& prediction =
        mode == mb_mode::kBForward    ? pred_f
        : mode == mb_mode::kBBackward ? pred_b
                                      : pred_i;
    put_ue(writer, mode);
    if (mode != mb_mode::kBBackward) {
      put_se(writer, fwd.mv.dx - state.mv_pred_f.dx);
      put_se(writer, fwd.mv.dy - state.mv_pred_f.dy);
      state.mv_pred_f = fwd.mv;
    }
    if (mode != mb_mode::kBForward) {
      put_se(writer, bwd.mv.dx - state.mv_pred_b.dx);
      put_se(writer, bwd.mv.dy - state.mv_pred_b.dy);
      state.mv_pred_b = bwd.mv;
    }
    std::array<CoeffBlock, 6> levels;
    const std::uint32_t cbp =
        quantize_residual<kFast>(current, prediction, qscale, levels);
    state.dc.reset();
    code_inter_blocks<kFast>(writer, cbp, levels, prediction, qscale, recon,
                             mb_x, mb_y);
  }
}

}  // namespace

Encoder::Encoder(EncoderConfig config) : config_(std::move(config)) {
  if (config_.fps < 1 || config_.fps > 255) {
    throw std::invalid_argument("Encoder: fps out of range");
  }
  for (const int q : {config_.i_quant, config_.p_quant, config_.b_quant}) {
    if (q < 1 || q > 31) {
      throw std::invalid_argument("Encoder: quantizer scale out of [1,31]");
    }
  }
  if (config_.search_range < 0 || config_.search_range > 64) {
    throw std::invalid_argument("Encoder: bad search range");
  }
  for (const int q : config_.per_picture_quant) {
    if (q < 0 || q > 31) {
      throw std::invalid_argument("Encoder: bad per-picture quant override");
    }
  }
}

EncodeResult Encoder::encode(const std::vector<Frame>& display_frames) const {
  EncodeResult result;
  EncodeWorkspace workspace;
  encode_into(display_frames, result, workspace);
  return result;
}

void Encoder::encode_into(const std::vector<Frame>& display_frames,
                          EncodeResult& result,
                          EncodeWorkspace& ws) const {
  if (display_frames.empty()) {
    throw std::invalid_argument("Encoder::encode: no frames");
  }
  const int width = display_frames.front().width();
  const int height = display_frames.front().height();
  for (const Frame& frame : display_frames) {
    if (frame.width() != width || frame.height() != height) {
      throw std::invalid_argument("Encoder::encode: frame size mismatch");
    }
  }
  const int mb_cols = width / 16;
  const int mb_rows = height / 16;
  if (mb_rows > startcode::kSliceLast - startcode::kSliceFirst) {
    throw std::invalid_argument("Encoder::encode: too many slice rows");
  }

  const int n = static_cast<int>(display_frames.size());
  // The type sequence and coded-order permutation depend only on (n,
  // pattern); a warm workspace skips recomputing them (the permutation
  // helper returns a fresh vector, the one allocation this path can't
  // reuse).
  if (ws.cached_count != n || ws.cached_gop_n != config_.pattern.N() ||
      ws.cached_gop_m != config_.pattern.M()) {
    ws.types.clear();
    ws.types.reserve(static_cast<std::size_t>(n));
    for (int i = 1; i <= n; ++i) {
      ws.types.push_back(config_.pattern.type_of(i));
    }
    ws.order = lsm::trace::display_to_coded_permutation(ws.types);
    ws.cached_count = n;
    ws.cached_gop_n = config_.pattern.N();
    ws.cached_gop_m = config_.pattern.M();
  }
  const std::vector<PictureType>& types = ws.types;
  const std::vector<int>& order = ws.order;

  // Reconstruction slots: the forward anchor, the backward anchor, and the
  // picture being coded rotate through three persistent frames — every
  // macroblock path stores its reconstruction, so a reused frame is fully
  // overwritten before anything reads it.
  for (Frame& frame : ws.recon) {
    if (frame.width() != width || frame.height() != height) {
      frame = Frame(width, height);
    }
  }
  if (static_cast<int>(ws.slice_writers.size()) < mb_rows) {
    ws.slice_writers.resize(static_cast<std::size_t>(mb_rows));
  }

  result.stream.clear();
  result.pictures.clear();
  result.pictures.reserve(static_cast<std::size_t>(n));
  result.sequence_header = SequenceHeader{
      width, height, config_.fps, config_.pattern.N(), config_.pattern.M()};
  BitWriter& header_writer = ws.header_writer;
  header_writer.clear();
  write_fields(header_writer, result.sequence_header);
  header_writer.align();
  append_unit(result.stream, startcode::kSequenceHeader,
              header_writer.bytes());

  int older_slot = -1;  // forward anchor for B, previous-previous reference
  int newer_slot = -1;  // most recent reference; its display index below
  int newer_display = -1;
  int gop_counter = 0;

  const bool fast = config_.path == EncoderPath::kAuto && simd_available();

  for (int ci = 0; ci < n; ++ci) {
    const int di = order[static_cast<std::size_t>(ci)];
    const PictureType type = types[static_cast<std::size_t>(di)];
    const Frame& source = display_frames[static_cast<std::size_t>(di)];

    if (type == PictureType::I) {
      header_writer.clear();
      write_fields(header_writer, GroupHeader{gop_counter++ & 0xFFFF, true});
      header_writer.align();
      append_unit(result.stream, startcode::kGroup, header_writer.bytes());
    }

    int qscale = type == PictureType::I   ? config_.i_quant
                 : type == PictureType::P ? config_.p_quant
                                          : config_.b_quant;
    if (!config_.per_picture_quant.empty()) {
      if (config_.per_picture_quant.size() != static_cast<std::size_t>(n)) {
        throw std::invalid_argument(
            "Encoder: per-picture quant override length mismatch");
      }
      const int override_q =
          config_.per_picture_quant[static_cast<std::size_t>(di)];
      if (override_q != 0) qscale = override_q;
    }
    const std::int64_t offset_before =
        static_cast<std::int64_t>(result.stream.size());
    header_writer.clear();
    write_fields(header_writer, PictureHeader{di & 0xFFFF, type, qscale});
    header_writer.align();
    append_unit(result.stream, startcode::kPicture, header_writer.bytes());

    // Reference selection for this picture.
    const Frame* forward_ref = nullptr;
    const Frame* backward_ref = nullptr;
    if (type == PictureType::P) {
      if (newer_slot < 0) {
        throw std::invalid_argument(
            "Encoder::encode: P picture without a reference (sequence must "
            "start with I)");
      }
      forward_ref = &ws.recon[static_cast<std::size_t>(newer_slot)];
    } else if (type == PictureType::B) {
      if (newer_slot < 0) {
        throw std::invalid_argument(
            "Encoder::encode: B picture without any reference");
      }
      const Frame& newer = ws.recon[static_cast<std::size_t>(newer_slot)];
      if (di > newer_display) {
        forward_ref = &newer;  // trailing B: forward prediction only
      } else {
        forward_ref = older_slot >= 0
                          ? &ws.recon[static_cast<std::size_t>(older_slot)]
                          : &newer;
        backward_ref = &newer;
      }
    }

    // The slot neither anchor occupies receives this picture.
    int recon_slot = 0;
    while (recon_slot == older_slot || recon_slot == newer_slot) {
      ++recon_slot;
    }
    Frame& recon = ws.recon[static_cast<std::size_t>(recon_slot)];
    const PictureContext ctx{config_, source,  forward_ref, backward_ref,
                             type,    qscale,  mb_cols,     recon};

    // Each slice row encodes into its persistent writer (cleared, so the
    // high-water capacity from earlier pictures is reused), possibly
    // concurrently; payloads are then spliced in row order, so the stream
    // bytes are independent of the executor and thread count. The job
    // indirection keeps the row closure to one captured pointer — small
    // enough for std::function's inline storage on the executor hop.
    struct RowJob {
      const PictureContext* ctx;
      BitWriter* writers;
      bool fast;
    };
    const RowJob job{&ctx, ws.slice_writers.data(), fast};
    auto encode_row = [&job](int mb_y) {
      BitWriter& writer = job.writers[mb_y];
      writer.clear();
      if (job.fast) {
        encode_slice_row<true>(*job.ctx, mb_y, writer);
      } else {
        encode_slice_row<false>(*job.ctx, mb_y, writer);
      }
      writer.align();
    };
    if (config_.slice_executor) {
      config_.slice_executor(mb_rows, encode_row);
    } else {
      for (int mb_y = 0; mb_y < mb_rows; ++mb_y) encode_row(mb_y);
    }
    for (int mb_y = 0; mb_y < mb_rows; ++mb_y) {
      append_unit(result.stream,
                  static_cast<std::uint8_t>(startcode::kSliceFirst + mb_y),
                  ws.slice_writers[static_cast<std::size_t>(mb_y)].bytes());
    }

    EncodedPicture record;
    record.display_index = di;
    record.coded_index = ci;
    record.type = type;
    record.bits =
        (static_cast<std::int64_t>(result.stream.size()) - offset_before) * 8;
    const bool have_recon =
        type != PictureType::B || config_.reconstruct_b;
    record.psnr_y = have_recon ? psnr_y(source, recon) : 0.0;
    result.pictures.push_back(record);

    if (type != PictureType::B) {
      older_slot = newer_slot;
      newer_slot = recon_slot;
      newer_display = di;
    }
  }

  append_start_code(result.stream, startcode::kSequenceEnd);
}

lsm::trace::Trace EncodeResult::display_trace(const std::string& name) const {
  std::vector<lsm::trace::Bits> sizes(pictures.size(), 0);
  std::vector<lsm::trace::PictureType> types(pictures.size(),
                                             lsm::trace::PictureType::I);
  for (const EncodedPicture& picture : pictures) {
    sizes[static_cast<std::size_t>(picture.display_index)] = picture.bits;
    types[static_cast<std::size_t>(picture.display_index)] = picture.type;
  }
  return lsm::trace::Trace(
      name,
      lsm::trace::GopPattern(sequence_header.gop_n, sequence_header.gop_m),
      std::move(sizes), std::move(types), 1.0 / sequence_header.fps,
      sequence_header.width, sequence_header.height);
}

lsm::trace::Trace EncodeResult::coded_trace(const std::string& name) const {
  std::vector<lsm::trace::Bits> sizes;
  std::vector<lsm::trace::PictureType> types;
  sizes.reserve(pictures.size());
  for (const EncodedPicture& picture : pictures) {
    sizes.push_back(picture.bits);
    types.push_back(picture.type);
  }
  return lsm::trace::Trace(
      name,
      lsm::trace::GopPattern(sequence_header.gop_n, sequence_header.gop_m),
      std::move(sizes), std::move(types), 1.0 / sequence_header.fps,
      sequence_header.width, sequence_header.height);
}

}  // namespace lsm::mpeg
