#include "mpeg/zigzag.h"

#include <stdexcept>

namespace lsm::mpeg {

const std::array<std::uint8_t, 64>& zigzag_scan() noexcept {
  static const std::array<std::uint8_t, 64> scan = {
      0,  1,  8,  16, 9,  2,  3,  10,
      17, 24, 32, 25, 18, 11, 4,  5,
      12, 19, 26, 33, 40, 48, 41, 34,
      27, 20, 13, 6,  7,  14, 21, 28,
      35, 42, 49, 56, 57, 50, 43, 36,
      29, 22, 15, 23, 30, 37, 44, 51,
      58, 59, 52, 45, 38, 31, 39, 46,
      53, 60, 61, 54, 47, 55, 62, 63};
  return scan;
}

std::vector<RunLevel> run_length_encode(const CoeffBlock& block) {
  RunLevel buffer[kMaxRunLevels];
  const std::size_t count = run_length_encode_into(block, buffer);
  return std::vector<RunLevel>(buffer, buffer + count);
}

std::size_t run_length_encode_into(const CoeffBlock& block, RunLevel* out) {
  const auto& scan = zigzag_scan();
  std::size_t count = 0;
  int run = 0;
  for (std::size_t k = 1; k < 64; ++k) {
    const std::int16_t value = block[scan[k]];
    if (value == 0) {
      ++run;
    } else {
      out[count++] = RunLevel{static_cast<std::uint8_t>(run), value};
      run = 0;
    }
  }
  return count;
}

CoeffBlock run_length_decode(std::int16_t dc,
                             const std::vector<RunLevel>& pairs) {
  const auto& scan = zigzag_scan();
  CoeffBlock block{};
  block[0] = dc;
  std::size_t position = 1;
  for (const RunLevel& pair : pairs) {
    if (pair.level == 0) {
      throw std::invalid_argument("run_length_decode: zero level");
    }
    position += pair.run;
    if (position >= 64) {
      throw std::invalid_argument("run_length_decode: overflow");
    }
    block[scan[position]] = pair.level;
    ++position;
  }
  return block;
}

}  // namespace lsm::mpeg
