#include "mpeg/frame.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lsm::mpeg {

Plane::Plane(int width, int height, std::uint8_t fill)
    : width_(width),
      height_(height),
      data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
            fill) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Plane: non-positive dimensions");
  }
}

std::uint8_t Plane::at(int x, int y) const {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    throw std::out_of_range("Plane::at: coordinates out of range");
  }
  return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
               static_cast<std::size_t>(x)];
}

void Plane::set(int x, int y, std::uint8_t value) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    throw std::out_of_range("Plane::set: coordinates out of range");
  }
  data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
        static_cast<std::size_t>(x)] = value;
}

std::uint8_t Plane::at_clamped(int x, int y) const noexcept {
  const int cx = std::clamp(x, 0, width_ - 1);
  const int cy = std::clamp(y, 0, height_ - 1);
  return data_[static_cast<std::size_t>(cy) * static_cast<std::size_t>(width_) +
               static_cast<std::size_t>(cx)];
}

Frame::Frame(int width, int height)
    : y(width, height),
      cb(width / 2, height / 2, 128),
      cr(width / 2, height / 2, 128) {
  if (width % 16 != 0 || height % 16 != 0) {
    throw std::invalid_argument("Frame: dimensions must be multiples of 16");
  }
}

double psnr_y(const Frame& a, const Frame& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("psnr_y: size mismatch");
  }
  double sse = 0.0;
  const auto& pa = a.y.samples();
  const auto& pb = b.y.samples();
  for (std::size_t k = 0; k < pa.size(); ++k) {
    const double d = static_cast<double>(pa[k]) - static_cast<double>(pb[k]);
    sse += d * d;
  }
  if (sse == 0.0) return std::numeric_limits<double>::infinity();
  const double mse = sse / static_cast<double>(pa.size());
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace lsm::mpeg
