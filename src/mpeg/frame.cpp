#include "mpeg/frame.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lsm::mpeg {

Plane::Plane(int width, int height, std::uint8_t fill)
    : width_(width),
      height_(height),
      data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
            fill) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Plane: non-positive dimensions");
  }
}

Frame::Frame(int width, int height)
    : y(width, height),
      cb(width / 2, height / 2, 128),
      cr(width / 2, height / 2, 128) {
  if (width % 16 != 0 || height % 16 != 0) {
    throw std::invalid_argument("Frame: dimensions must be multiples of 16");
  }
}

double psnr_y(const Frame& a, const Frame& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("psnr_y: size mismatch");
  }
  // Accumulate in integers: every per-pixel squared error is an integer
  // <= 255^2, so the double accumulation this replaces was exact (the sum
  // stays far below 2^53 for any plane up to ~10^8 pixels) and the integer
  // sum converts to the identical double — same psnr bits, and the loop
  // autovectorizes.
  std::int64_t sse = 0;
  const auto& pa = a.y.samples();
  const auto& pb = b.y.samples();
  for (std::size_t k = 0; k < pa.size(); ++k) {
    const int d = static_cast<int>(pa[k]) - static_cast<int>(pb[k]);
    sse += d * d;
  }
  if (sse == 0) return std::numeric_limits<double>::infinity();
  const double mse =
      static_cast<double>(sse) / static_cast<double>(pa.size());
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace lsm::mpeg
