// MPEG systems layer (ISO 11172-1 in miniature): packs the video elementary
// stream into a timestamped systems stream — the form in which MPEG video
// is actually stored and handed to a transport (the paper's Section 1:
// MPEG targets "storing video on digital storage media ... as well as
// delivering video through local area networks").
//
// Structure (field widths ours, start-code numbering MPEG's):
//
//   pack        ::= 0x000001BA  SCR(32, 90 kHz ticks)  mux_rate(22, b/s/50)
//                   <PES packet>
//   PES packet  ::= 0x000001E0  length(16)  flags(8)  [PTS(32, 90 kHz)]
//                   payload bytes (length counts from the flags byte)
//   end         ::= 0x000001B9
//
// A PTS is attached to the first PES packet that begins a coded picture;
// its value is the picture's DISPLAY time. The PES length field delimits
// payloads exactly, so no start-code emulation handling is needed at this
// layer. The demuxer reassembles the elementary stream byte-exactly and
// returns the timestamp list — enough for a receiver to schedule decode and
// playout (the playout-offset logic of net/transport.h).
#pragma once

#include <cstdint>
#include <vector>

#include "mpeg/encoder.h"

namespace lsm::mpeg {

/// 90 kHz system clock, as in MPEG.
inline constexpr double kSystemClockHz = 90000.0;

struct SystemsConfig {
  int pes_payload_bytes = 2016;  ///< elementary-stream bytes per PES packet
  double mux_rate_bps = 4e6;     ///< rate the SCR advances at (> 0)
};

struct SystemsStream {
  std::vector<std::uint8_t> bytes;
  int pack_count = 0;
  int pts_count = 0;
};

/// Packs `encoded` (elementary stream + picture bookkeeping) into a systems
/// stream. Throws std::invalid_argument on a bad config.
SystemsStream mux_systems(const EncodeResult& encoded,
                          const SystemsConfig& config = {});

struct PtsEntry {
  std::int64_t es_offset = 0;  ///< byte offset within the elementary stream
  double seconds = 0.0;        ///< PTS / 90 kHz
};

struct DemuxResult {
  std::vector<std::uint8_t> elementary;  ///< reassembled video ES
  std::vector<double> scr_seconds;       ///< one per pack, monotone
  std::vector<PtsEntry> pts;             ///< in stream order
  double mux_rate_bps = 0.0;
};

/// Unpacks a systems stream. Throws std::runtime_error on malformed input.
DemuxResult demux_systems(const std::vector<std::uint8_t>& stream);

}  // namespace lsm::mpeg
