#include "mpeg/bits.h"

#include <stdexcept>
#include <utility>

namespace lsm::mpeg {

void BitWriter::put_bits(std::uint32_t value, int count) {
  if (count < 0 || count > 32) {
    throw std::invalid_argument("BitWriter::put_bits: bad count");
  }
  if (count < 32 && value >= (std::uint64_t{1} << count)) {
    throw std::invalid_argument("BitWriter::put_bits: value does not fit");
  }
  int remaining = count;
  // Top up the trailing partial byte.
  if (remaining > 0 && bit_pos_ != 0) {
    const int take = remaining < 8 - bit_pos_ ? remaining : 8 - bit_pos_;
    const std::uint32_t chunk =
        (value >> (remaining - take)) & ((1u << take) - 1u);
    bytes_.back() = static_cast<std::uint8_t>(
        bytes_.back() | (chunk << (8 - bit_pos_ - take)));
    bit_pos_ = (bit_pos_ + take) % 8;
    remaining -= take;
  }
  // Whole bytes at once.
  while (remaining >= 8) {
    remaining -= 8;
    bytes_.push_back(static_cast<std::uint8_t>((value >> remaining) & 0xFFu));
  }
  // Start a fresh partial byte with the tail bits.
  if (remaining > 0) {
    const std::uint32_t chunk = value & ((1u << remaining) - 1u);
    bytes_.push_back(static_cast<std::uint8_t>(chunk << (8 - remaining)));
    bit_pos_ = remaining;
  }
}

void BitWriter::align() {
  bit_pos_ = 0;
}

std::int64_t BitWriter::bit_count() const noexcept {
  const std::int64_t full = static_cast<std::int64_t>(bytes_.size()) * 8;
  return bit_pos_ == 0 ? full : full - (8 - bit_pos_);
}

std::vector<std::uint8_t> BitWriter::take() {
  align();
  return std::exchange(bytes_, {});
}

BitReader::BitReader(std::vector<std::uint8_t> bytes)
    : bytes_(std::move(bytes)) {}

std::uint32_t BitReader::get_bits(int count) {
  if (count < 0 || count > 32) {
    throw std::invalid_argument("BitReader::get_bits: bad count");
  }
  std::uint32_t value = 0;
  for (int k = 0; k < count; ++k) {
    if (byte_pos_ >= bytes_.size()) {
      throw std::out_of_range("BitReader: read past end of stream");
    }
    const bool bit = (bytes_[byte_pos_] & (0x80u >> bit_pos_)) != 0;
    value = (value << 1) | (bit ? 1u : 0u);
    ++bit_pos_;
    if (bit_pos_ == 8) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
  }
  return value;
}

void BitReader::align() {
  if (bit_pos_ != 0) {
    bit_pos_ = 0;
    ++byte_pos_;
  }
}

std::int64_t BitReader::remaining() const noexcept {
  return static_cast<std::int64_t>(bytes_.size() - byte_pos_) * 8 - bit_pos_;
}

std::vector<std::uint8_t> escape_payload(
    const std::vector<std::uint8_t>& raw) {
  std::vector<std::uint8_t> out;
  out.reserve(raw.size() + raw.size() / 64 + 4);
  int zeros = 0;
  for (const std::uint8_t byte : raw) {
    if (zeros >= 2 && byte <= 0x03) {
      out.push_back(0x03);
      zeros = 0;
    }
    out.push_back(byte);
    zeros = (byte == 0x00) ? zeros + 1 : 0;
  }
  // A payload ending in 0x00 0x00 could merge with a following start-code
  // prefix; terminate such payloads with a guard byte.
  if (zeros >= 2) out.push_back(0x03);
  return out;
}

std::vector<std::uint8_t> unescape_payload(
    const std::vector<std::uint8_t>& escaped) {
  std::vector<std::uint8_t> out;
  out.reserve(escaped.size());
  int zeros = 0;
  for (std::size_t k = 0; k < escaped.size(); ++k) {
    const std::uint8_t byte = escaped[k];
    if (zeros >= 2 && byte == 0x03) {
      zeros = 0;
      continue;  // emulation-prevention byte
    }
    out.push_back(byte);
    zeros = (byte == 0x00) ? zeros + 1 : 0;
  }
  return out;
}

void append_start_code(std::vector<std::uint8_t>& out, std::uint8_t code) {
  out.push_back(0x00);
  out.push_back(0x00);
  out.push_back(0x01);
  out.push_back(code);
}

std::int64_t find_start_code(const std::vector<std::uint8_t>& data,
                             std::int64_t from) {
  if (from < 0) from = 0;
  const std::int64_t size = static_cast<std::int64_t>(data.size());
  for (std::int64_t k = from; k + 3 < size; ++k) {
    if (data[static_cast<std::size_t>(k)] == 0x00 &&
        data[static_cast<std::size_t>(k + 1)] == 0x00 &&
        data[static_cast<std::size_t>(k + 2)] == 0x01) {
      return k;
    }
  }
  return -1;
}

}  // namespace lsm::mpeg
