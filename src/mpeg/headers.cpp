#include "mpeg/headers.h"

#include <stdexcept>

namespace lsm::mpeg {

namespace {

std::uint32_t type_code(lsm::trace::PictureType type) noexcept {
  switch (type) {
    case lsm::trace::PictureType::I: return 0;
    case lsm::trace::PictureType::P: return 1;
    case lsm::trace::PictureType::B: return 2;
  }
  return 0;
}

lsm::trace::PictureType type_from_code(std::uint32_t code) {
  switch (code) {
    case 0: return lsm::trace::PictureType::I;
    case 1: return lsm::trace::PictureType::P;
    case 2: return lsm::trace::PictureType::B;
    default:
      throw std::runtime_error("picture header: bad type code");
  }
}

}  // namespace

void write_fields(BitWriter& writer, const SequenceHeader& header) {
  writer.put_bits(static_cast<std::uint32_t>(header.width), 16);
  writer.put_bits(static_cast<std::uint32_t>(header.height), 16);
  writer.put_bits(static_cast<std::uint32_t>(header.fps), 8);
  writer.put_bits(static_cast<std::uint32_t>(header.gop_n), 8);
  writer.put_bits(static_cast<std::uint32_t>(header.gop_m), 8);
}

void write_fields(BitWriter& writer, const GroupHeader& header) {
  writer.put_bits(static_cast<std::uint32_t>(header.index), 16);
  writer.put_bit(header.closed);
}

void write_fields(BitWriter& writer, const PictureHeader& header) {
  writer.put_bits(
      static_cast<std::uint32_t>(header.temporal_reference & 0xFFFF), 16);
  writer.put_bits(type_code(header.type), 2);
  writer.put_bits(static_cast<std::uint32_t>(header.quantizer_scale), 5);
}

SequenceHeader read_sequence_header(BitReader& reader) {
  SequenceHeader header;
  header.width = static_cast<int>(reader.get_bits(16));
  header.height = static_cast<int>(reader.get_bits(16));
  header.fps = static_cast<int>(reader.get_bits(8));
  header.gop_n = static_cast<int>(reader.get_bits(8));
  header.gop_m = static_cast<int>(reader.get_bits(8));
  return header;
}

GroupHeader read_group_header(BitReader& reader) {
  GroupHeader header;
  header.index = static_cast<int>(reader.get_bits(16));
  header.closed = reader.get_bit();
  return header;
}

PictureHeader read_picture_header(BitReader& reader) {
  PictureHeader header;
  header.temporal_reference = static_cast<int>(reader.get_bits(16));
  header.type = type_from_code(reader.get_bits(2));
  header.quantizer_scale = static_cast<int>(reader.get_bits(5));
  return header;
}

void append_unit(std::vector<std::uint8_t>& out, std::uint8_t code,
                 const std::vector<std::uint8_t>& payload) {
  // Escape directly into `out` (same byte-pair rule as escape_payload, and
  // the same trailing guard) instead of materializing a temporary escaped
  // vector: the stream buffer amortizes to its high-water capacity, so the
  // per-unit hot path stops allocating.
  append_start_code(out, code);
  out.reserve(out.size() + payload.size() + payload.size() / 64 + 4);
  int zeros = 0;
  for (const std::uint8_t byte : payload) {
    if (zeros >= 2 && byte <= 0x03) {
      out.push_back(0x03);
      zeros = 0;
    }
    out.push_back(byte);
    zeros = (byte == 0x00) ? zeros + 1 : 0;
  }
  if (zeros >= 2) out.push_back(0x03);
}

}  // namespace lsm::mpeg
