#include "core/estimator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lsm::core {

using lsm::trace::PictureType;

Bits DefaultSizes::of(PictureType type) const noexcept {
  switch (type) {
    case PictureType::I: return i_bits;
    case PictureType::P: return p_bits;
    case PictureType::B: return b_bits;
  }
  return b_bits;
}

namespace {

void check_index(int j, const lsm::trace::Trace& trace) {
  if (j < 1 || j > trace.picture_count()) {
    throw std::out_of_range("SizeEstimator: picture index out of range");
  }
}

}  // namespace

PatternEstimator::PatternEstimator(const lsm::trace::Trace& trace,
                                   DefaultSizes defaults)
    : trace_(trace), defaults_(defaults) {}

Bits PatternEstimator::size_at(int j, Seconds t) const {
  check_index(j, trace_);
  const int n_pattern = trace_.pattern().N();
  // Walk back in steps of N until an arrived picture (same pattern phase,
  // hence same type) is found. With H <= N at most one step is taken.
  int k = j;
  while (k >= 1 && !arrived(k, t, trace_.tau())) k -= n_pattern;
  if (k >= 1) return trace_.size_of(k);
  return defaults_.of(trace_.type_of(j));
}

Bits OracleEstimator::size_at(int j, Seconds) const {
  check_index(j, trace_);
  return trace_.size_of(j);
}

LastSameTypeEstimator::LastSameTypeEstimator(const lsm::trace::Trace& trace,
                                             DefaultSizes defaults)
    : trace_(trace), defaults_(defaults) {}

Bits LastSameTypeEstimator::size_at(int j, Seconds t) const {
  check_index(j, trace_);
  const PictureType wanted = trace_.type_of(j);
  // Most recent arrived picture overall is floor(t / tau); scan back for the
  // matching type.
  int latest = static_cast<int>(std::floor(t / trace_.tau() + 1e-9));
  latest = std::min(latest, trace_.picture_count());
  if (arrived(j, t, trace_.tau())) return trace_.size_of(j);
  for (int k = latest; k >= 1; --k) {
    if (trace_.type_of(k) == wanted) return trace_.size_of(k);
  }
  return defaults_.of(wanted);
}

PhaseEwmaEstimator::PhaseEwmaEstimator(const lsm::trace::Trace& trace,
                                       double alpha, DefaultSizes defaults)
    : trace_(trace), alpha_(alpha), defaults_(defaults) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("PhaseEwmaEstimator: alpha must be in (0,1]");
  }
  const int n_phase = trace.pattern().N();
  by_phase_.resize(static_cast<std::size_t>(n_phase));
  for (int i = 1; i <= trace.picture_count(); ++i) {
    PhaseHistory& history =
        by_phase_[static_cast<std::size_t>(trace.pattern().phase_of(i))];
    const double sample = static_cast<double>(trace.size_of(i));
    const double updated =
        history.ewma_after.empty()
            ? sample
            : alpha_ * sample + (1.0 - alpha_) * history.ewma_after.back();
    history.indices.push_back(i);
    history.ewma_after.push_back(updated);
  }
}

Bits PhaseEwmaEstimator::size_at(int j, Seconds t) const {
  check_index(j, trace_);
  if (arrived(j, t, trace_.tau())) return trace_.size_of(j);
  const PhaseHistory& history =
      by_phase_[static_cast<std::size_t>(trace_.pattern().phase_of(j))];
  // Last same-phase picture that has arrived by t.
  int latest = static_cast<int>(std::floor(t / trace_.tau() + 1e-9));
  latest = std::min(latest, trace_.picture_count());
  const auto it = std::upper_bound(history.indices.begin(),
                                   history.indices.end(), latest);
  if (it == history.indices.begin()) {
    return defaults_.of(trace_.type_of(j));
  }
  const auto position =
      static_cast<std::size_t>(it - history.indices.begin() - 1);
  return static_cast<Bits>(std::llround(history.ewma_after[position]));
}

TypeMeanEstimator::TypeMeanEstimator(const lsm::trace::Trace& trace,
                                     DefaultSizes defaults)
    : trace_(trace), defaults_(defaults) {
  const auto n = static_cast<std::size_t>(trace.picture_count());
  prefix_sums_.assign(3, std::vector<double>(n + 1, 0.0));
  prefix_counts_.assign(3, std::vector<int>(n + 1, 0));
  for (std::size_t k = 1; k <= n; ++k) {
    const auto type = static_cast<std::size_t>(
        trace.type_of(static_cast<int>(k)));
    for (std::size_t t = 0; t < 3; ++t) {
      prefix_sums_[t][k] = prefix_sums_[t][k - 1];
      prefix_counts_[t][k] = prefix_counts_[t][k - 1];
    }
    prefix_sums_[type][k] +=
        static_cast<double>(trace.size_of(static_cast<int>(k)));
    prefix_counts_[type][k] += 1;
  }
}

Bits TypeMeanEstimator::size_at(int j, Seconds t) const {
  check_index(j, trace_);
  if (arrived(j, t, trace_.tau())) return trace_.size_of(j);
  const auto type_index =
      static_cast<std::size_t>(static_cast<int>(trace_.type_of(j)));
  int latest = static_cast<int>(std::floor(t / trace_.tau() + 1e-9));
  latest = std::clamp(latest, 0, trace_.picture_count());
  const int count =
      prefix_counts_[type_index][static_cast<std::size_t>(latest)];
  if (count == 0) return defaults_.of(trace_.type_of(j));
  const double mean =
      prefix_sums_[type_index][static_cast<std::size_t>(latest)] / count;
  return static_cast<Bits>(std::llround(mean));
}

}  // namespace lsm::core
