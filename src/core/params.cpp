#include "core/params.h"

namespace lsm::core {

void SmootherParams::validate() const {
  if (!(D > 0.0)) throw InvalidParams("SmootherParams: D must be > 0");
  if (K < 0) throw InvalidParams("SmootherParams: K must be >= 0");
  if (H < 1) throw InvalidParams("SmootherParams: H must be >= 1");
  if (!(tau > 0.0)) throw InvalidParams("SmootherParams: tau must be > 0");
  if (rate_quantum < 0.0) {
    throw InvalidParams("SmootherParams: rate_quantum must be >= 0");
  }
}

bool SmootherParams::guarantees_delay_bound() const noexcept {
  // A hair of tolerance so D specified as exactly (K+1)*tau (as in the
  // paper's Figure 5/8 experiments, D = 0.1333 + (K+1)/30) passes cleanly.
  constexpr double kEps = 1e-12;
  return K >= 1 && D + kEps >= (static_cast<double>(K) + 1.0) * tau;
}

}  // namespace lsm::core
