// Batch front end over SmootherEngine: run a whole trace through the basic
// or modified algorithm and collect the result.
#pragma once

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/schedule.h"

namespace lsm::core {

/// Complete output of one smoothing run.
struct SmoothingResult {
  std::vector<PictureSend> sends;          ///< one record per picture
  std::vector<StepDiagnostics> diagnostics; ///< parallel to sends
  SmootherParams params;
  Variant variant = Variant::kBasic;
  std::string estimator_name;

  /// The rate function r(t) as a schedule.
  RateSchedule schedule() const { return RateSchedule::from_sends(sends); }

  /// Largest per-picture delay observed.
  Seconds max_delay() const noexcept;

  /// Number of times r(t) changed (the first assignment counts as a change,
  /// matching "number of rate changes over [0, T]").
  int rate_change_count() const noexcept;
};

/// Runs `variant` of the algorithm over `trace` using `estimator`. `path`
/// selects the devirtualized fast path (kAuto, the default) or the virtual
/// reference implementation (kReference); outputs are bitwise identical.
SmoothingResult smooth(const lsm::trace::Trace& trace,
                       const SmootherParams& params,
                       const SizeEstimator& estimator,
                       Variant variant = Variant::kBasic,
                       ExecutionPath path = ExecutionPath::kAuto);

/// Same run, but written into `out`, whose sends/diagnostics capacity is
/// reused — repeated runs into the same result do not allocate once the
/// vectors have grown to the largest trace. The batch runtime's hot path.
void smooth_into(const lsm::trace::Trace& trace, const SmootherParams& params,
                 const SizeEstimator& estimator, Variant variant,
                 SmoothingResult& out,
                 ExecutionPath path = ExecutionPath::kAuto);

/// Convenience: basic algorithm with the paper's pattern estimator.
SmoothingResult smooth_basic(const lsm::trace::Trace& trace,
                             const SmootherParams& params);

/// Convenience: Eq. 15 moving-average variant with the pattern estimator.
SmoothingResult smooth_modified(const lsm::trace::Trace& trace,
                                const SmootherParams& params);

}  // namespace lsm::core
