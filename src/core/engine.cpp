#include "core/engine.h"

#include <algorithm>
#include <stdexcept>

#include "core/rate_select.h"

namespace lsm::core {

SmootherEngine::SmootherEngine(const lsm::trace::Trace& trace,
                               const SmootherParams& params,
                               const SizeEstimator& estimator, Variant variant)
    : trace_(trace), params_(params), estimator_(estimator), variant_(variant) {
  params_.validate();
}

bool SmootherEngine::done() const noexcept {
  return next_ > trace_.picture_count();
}

PictureSend SmootherEngine::step() {
  const int n = trace_.picture_count();
  const int i = next_;
  if (i > n) throw std::logic_error("SmootherEngine::step: already done");
  const double tau = params_.tau;

  // t_i = max(d_{i-1}, (i-1+K) tau), truncated to pictures that exist.
  const int last_required = std::min(i - 1 + params_.K, n);
  const Seconds time =
      std::max(depart_, static_cast<double>(last_required) * tau);

  const detail::RateDecision decision = detail::select_rate(
      i, time, n, rate_, params_, trace_.pattern().N(), variant_,
      static_cast<double>(trace_.size_of(i)),
      [this](int j, Seconds t) { return estimator_.size_at(j, t); });
  rate_ = decision.rate;
  diag_ = decision.diag;

  PictureSend send;
  send.index = i;
  send.bits = trace_.size_of(i);
  send.start = time;
  send.rate = rate_;
  send.depart = time + static_cast<double>(send.bits) / rate_;
  send.delay = send.depart - static_cast<double>(i - 1) * tau;

  depart_ = send.depart;
  ++next_;
  return send;
}

std::vector<PictureSend> SmootherEngine::run() {
  std::vector<PictureSend> sends;
  sends.reserve(static_cast<std::size_t>(trace_.picture_count() - next_ + 1));
  while (!done()) sends.push_back(step());
  return sends;
}

}  // namespace lsm::core
