#include "core/engine.h"

#include <algorithm>
#include <stdexcept>
#include <type_traits>

#include "core/rate_select.h"

namespace lsm::core {

SmootherEngine::SmootherEngine(const lsm::trace::Trace& trace,
                               const SmootherParams& params,
                               const SizeEstimator& estimator, Variant variant,
                               ExecutionPath path)
    : trace_(trace), params_(params), estimator_(estimator), variant_(variant) {
  params_.validate();
  kernel_ = fastpath::make_kernel(trace_, estimator_, path);
}

bool SmootherEngine::done() const noexcept {
  return next_ > trace_.picture_count();
}

template <typename Kernel>
[[gnu::always_inline]] inline PictureSend SmootherEngine::step_on(
    Kernel& kernel) {
  const int n = trace_.picture_count();
  const int i = next_;
  const double tau = params_.tau;

  // t_i = max(d_{i-1}, (i-1+K) tau), truncated to pictures that exist.
  const int last_required = std::min(i - 1 + params_.K, n);
  const Seconds time =
      std::max(depart_, static_cast<double>(last_required) * tau);

  const Bits bits = trace_.size_of(i);
  const double fallback = static_cast<double>(bits);
  detail::RateDecision decision;
  if constexpr (std::is_same_v<Kernel, std::monostate>) {
    decision = detail::select_rate(
        i, time, n, rate_, params_, trace_.pattern().N(), variant_, fallback,
        [this](int j, Seconds t) { return estimator_.size_at(j, t); });
  } else {
    decision =
        detail::select_rate_kernel(i, time, n, rate_, params_,
                                   trace_.pattern().N(), variant_, fallback,
                                   kernel);
  }
  const Rate previous_rate = rate_;
  rate_ = decision.rate;
  diag_ = decision.diag;

  PictureSend send;
  send.index = i;
  send.bits = bits;
  send.start = time;
  send.rate = rate_;
  send.depart = time + static_cast<double>(bits) / rate_;
  send.delay = send.depart - static_cast<double>(i - 1) * tau;

  if (tracer_.on()) {
    const std::uint32_t picture = static_cast<std::uint32_t>(i);
    if (diag_.early_exit) {
      tracer_.emit(obs::EventKind::kBoundCrossing, picture, time, diag_.lower,
                   diag_.upper);
    }
    if (diag_.rate_changed) {
      tracer_.emit(obs::EventKind::kRateChange, picture, time, rate_,
                   previous_rate);
    }
    tracer_.emit(obs::EventKind::kPictureScheduled, picture, time, send.rate,
                 send.delay, send.depart);
  }

  depart_ = send.depart;
  ++next_;
  return send;
}

PictureSend SmootherEngine::step() {
  if (done()) throw std::logic_error("SmootherEngine::step: already done");
  return std::visit([this](auto& kernel) { return step_on(kernel); }, kernel_);
}

void SmootherEngine::run_into(std::vector<PictureSend>& sends,
                              std::vector<StepDiagnostics>& diags) {
  const int n = trace_.picture_count();
  if (next_ > n) return;
  const std::size_t remaining = static_cast<std::size_t>(n - next_ + 1);
  sends.reserve(sends.size() + remaining);
  diags.reserve(diags.size() + remaining);
  std::visit(
      [&](auto& kernel) {
        while (next_ <= n) {
          sends.push_back(step_on(kernel));
          diags.push_back(diag_);
        }
      },
      kernel_);
}

std::vector<PictureSend> SmootherEngine::run() {
  std::vector<PictureSend> sends;
  std::vector<StepDiagnostics> diags;
  const std::size_t remaining =
      static_cast<std::size_t>(trace_.picture_count() - next_ + 1);
  sends.reserve(remaining);
  diags.reserve(remaining);
  run_into(sends, diags);
  return sends;
}

}  // namespace lsm::core
