#include "core/ideal.h"

#include <algorithm>

namespace lsm::core {

SmoothingResult smooth_ideal(const lsm::trace::Trace& trace) {
  const int n = trace.picture_count();
  const int pattern_length = trace.pattern().N();
  const double tau = trace.tau();

  SmoothingResult result;
  result.variant = Variant::kBasic;
  result.estimator_name = "ideal";
  result.sends.reserve(static_cast<std::size_t>(n));
  result.diagnostics.reserve(static_cast<std::size_t>(n));

  Seconds depart = 0.0;
  Rate previous_rate = 0.0;
  for (int first = 1; first <= n; first += pattern_length) {
    const int last = std::min(first + pattern_length - 1, n);
    double pattern_bits = 0.0;
    for (int i = first; i <= last; ++i) {
      pattern_bits += static_cast<double>(trace.size_of(i));
    }
    const Rate rate =
        pattern_bits / (static_cast<double>(last - first + 1) * tau);

    for (int i = first; i <= last; ++i) {
      // All pictures of the pattern must have arrived: not before last*tau.
      const Seconds start =
          std::max(depart, static_cast<double>(last) * tau);
      PictureSend send;
      send.index = i;
      send.bits = trace.size_of(i);
      send.rate = rate;
      send.start = start;
      send.depart = start + static_cast<double>(send.bits) / rate;
      send.delay = send.depart - static_cast<double>(i - 1) * tau;
      depart = send.depart;
      result.sends.push_back(send);

      StepDiagnostics diag;
      diag.lookahead_used = last - i + 1;
      diag.rate_changed = i == first && (first == 1 || rate != previous_rate);
      result.diagnostics.push_back(diag);
    }
    previous_rate = rate;
  }

  result.params.K = pattern_length;
  result.params.H = pattern_length;
  result.params.tau = tau;
  result.params.D = result.max_delay();
  return result;
}

}  // namespace lsm::core
