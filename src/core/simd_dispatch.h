// Runtime CPU-feature dispatch for the SIMD kernels.
//
// Until this layer existed every vector kernel was selected at compile
// time against the x86-64 baseline (SSE2), so a binary built for the
// baseline could never use the AVX2/AVX-512 units present on essentially
// every deployment host. Dispatch is now a runtime decision made once per
// process:
//
//   * detected_simd_level() probes the hardware with cpuid/xgetbv: AVX2
//     and AVX-512 each require the CPU feature flags AND the OS to have
//     enabled the corresponding XSAVE state components (XCR0 bits), so a
//     kernel that masks AVX-512 state demotes the level even when cpuid
//     advertises the instructions.
//   * active_simd_level() is what kernels dispatch on. It starts at
//     min(detected, LSM_SIMD_LEVEL env override) and can be moved at run
//     time with set_active_simd_level() — the hook the differential test
//     suites use to pin schedules/bitstreams bitwise-identical across
//     every level inside one process. It can never exceed the detected
//     level, so forcing "avx512" on an SSE2-only host degrades instead of
//     faulting.
//
// Kernels read the level through one relaxed atomic load per coarse call
// (a whole bounds fold, a whole 8x8 DCT, a whole motion search), which is
// noise next to the work dispatched. AVX2/AVX-512 kernel bodies live in
// dedicated translation units compiled with per-file -mavx2/-mavx512f
// flags (see src/core/CMakeLists.txt); no other object is ever compiled
// with wide-vector flags, so illegal instructions cannot leak into the
// baseline paths that run when the level says scalar or SSE2.
//
// The selected level and the steady-state allocation audit results are
// surfaced through obs::Registry (runtime.simd_level*, *.allocs_steady)
// so every metrics snapshot records which kernels actually ran.
#pragma once

#include <optional>
#include <string_view>

namespace lsm::obs {
class Registry;
}

namespace lsm::simd {

/// Instruction-set tiers the kernels are specialized for, in strictly
/// increasing order of capability (comparisons rely on the ordering).
enum class SimdLevel : int {
  kScalar = 0,  ///< no vector kernels; the differential reference tier
  kSse2 = 1,    ///< x86-64 baseline (128-bit)
  kAvx2 = 2,    ///< 256-bit integer + FMA-era doubles (we use no FMA)
  kAvx512 = 3,  ///< 512-bit foundation subset (F)
};

/// Highest level this machine can execute, probed once with cpuid/xgetbv
/// and cached. Non-x86 builds report kScalar.
SimdLevel detected_simd_level() noexcept;

/// The level kernels dispatch on: min(detected, LSM_SIMD_LEVEL override)
/// at first use, adjustable afterwards with set_active_simd_level(). One
/// relaxed atomic load.
SimdLevel active_simd_level() noexcept;

/// Moves the active level (clamped to the detected level — requesting
/// more capability than the hardware has selects the detected level).
/// Returns the level actually installed. Test hook and ops override; the
/// kernels pick it up on their next call.
SimdLevel set_active_simd_level(SimdLevel level) noexcept;

/// Canonical lowercase names: "scalar", "sse2", "avx2", "avx512".
const char* simd_level_name(SimdLevel level) noexcept;

/// Parses a canonical name (as accepted in LSM_SIMD_LEVEL). Returns
/// nullopt for anything else.
std::optional<SimdLevel> parse_simd_level(std::string_view name) noexcept;

/// Records the dispatch decision in `registry`:
///   runtime.simd_level          — active level as its numeric tier
///   runtime.simd_level_detected — what the hardware supports
/// Called automatically whenever the active level is (re)computed, against
/// the global registry; callable directly for private registries in tests.
void publish_simd_level(obs::Registry& registry);

}  // namespace lsm::simd
