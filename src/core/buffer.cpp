#include "core/buffer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lsm::core {

BufferAnalysis analyze_buffers(const lsm::trace::Trace& trace,
                               const SmoothingResult& result,
                               Seconds latency, Seconds playout_offset) {
  if (latency < 0.0) {
    throw std::invalid_argument("analyze_buffers: negative latency");
  }
  if (result.sends.size() !=
      static_cast<std::size_t>(trace.picture_count())) {
    throw std::invalid_argument("analyze_buffers: result/trace mismatch");
  }
  const double tau = trace.tau();
  const RateSchedule schedule = result.schedule();
  const Seconds horizon = std::max(schedule.end_time(), trace.duration());

  BufferAnalysis analysis;

  // --- Sender queue. Breakpoints: picture-period boundaries (arrival ramp
  // slope changes) and schedule breakpoints (send rate changes). Between
  // them Q(t) is linear, so sampling the grid captures the extrema.
  {
    std::vector<Seconds> grid = schedule.breakpoints();
    for (int i = 0; i <= trace.picture_count(); ++i) grid.push_back(i * tau);
    grid.push_back(horizon);
    std::sort(grid.begin(), grid.end());
    grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

    // Incremental cumulative arrivals would be O(n); the direct form is
    // O(n^2) over the grid, so accumulate picture sums once instead.
    std::vector<double> prefix(static_cast<std::size_t>(
                                   trace.picture_count()) + 1, 0.0);
    for (int i = 1; i <= trace.picture_count(); ++i) {
      prefix[static_cast<std::size_t>(i)] =
          prefix[static_cast<std::size_t>(i - 1)] +
          static_cast<double>(trace.size_of(i));
    }
    auto arrivals_fast = [&](Seconds t) {
      if (t <= 0.0) return 0.0;
      const int complete = std::min(
          trace.picture_count(),
          static_cast<int>(std::floor(t / tau + 1e-12)));
      double bits = prefix[static_cast<std::size_t>(complete)];
      if (complete < trace.picture_count()) {
        const double fraction = (t - complete * tau) / tau;
        if (fraction > 0.0) {
          bits += fraction * static_cast<double>(trace.size_of(complete + 1));
        }
      }
      return bits;
    };

    double previous_time = 0.0;
    double previous_bits = 0.0;
    double area = 0.0;
    for (const Seconds t : grid) {
      const double occupancy =
          std::max(0.0, arrivals_fast(t) - schedule.integral(0.0, t));
      analysis.sender.push_back(OccupancySample{t, occupancy});
      analysis.max_sender_bits = std::max(analysis.max_sender_bits, occupancy);
      area += 0.5 * (occupancy + previous_bits) * (t - previous_time);
      previous_time = t;
      previous_bits = occupancy;
    }
    if (horizon > 0.0) analysis.mean_sender_bits = area / horizon;
  }

  // --- Receiver buffer: evaluate just before each playout removal (the
  // occupancy maxima) and record post-removal minima to detect underflow.
  {
    double received_total = 0.0;
    double played = 0.0;
    analysis.min_receiver_bits = 0.0;
    for (int i = 1; i <= trace.picture_count(); ++i) {
      const Seconds playout = playout_offset + (i - 1) * tau;
      // Bits received by the playout instant.
      received_total = schedule.integral(0.0, playout - latency);
      const double before = received_total - played;
      analysis.receiver.push_back(OccupancySample{playout, before});
      analysis.max_receiver_bits =
          std::max(analysis.max_receiver_bits, before);
      played += static_cast<double>(trace.size_of(i));
      const double after = received_total - played;
      analysis.min_receiver_bits =
          std::min(analysis.min_receiver_bits, after);
      if (after < -1e-6) ++analysis.underflows;
    }
  }
  return analysis;
}

}  // namespace lsm::core
