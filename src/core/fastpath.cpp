#include "core/fastpath.h"

namespace lsm::core::fastpath {

KernelBase::KernelBase(const Trace& trace, DefaultSizes defaults)
    : trace_(&trace),
      sizes_(trace.sizes().data()),
      defaults_(defaults),
      tau_(trace.tau()),
      picture_count_(trace.picture_count()),
      next_threshold_(tau_ - 1e-12) {
  prefix_.resize(static_cast<std::size_t>(picture_count_) + 1);
  prefix_[0] = 0;
  for (int k = 1; k <= picture_count_; ++k) {
    prefix_[static_cast<std::size_t>(k)] =
        prefix_[static_cast<std::size_t>(k - 1)] + size_of(k);
  }
}

PatternKernel::PatternKernel(const Trace& trace, DefaultSizes defaults)
    : KernelBase(trace, defaults), pattern_n_(trace.pattern().N()) {}

OracleKernel::OracleKernel(const Trace& trace)
    : KernelBase(trace, DefaultSizes{}) {}

LastSameTypeKernel::LastSameTypeKernel(const Trace& trace,
                                       DefaultSizes defaults)
    : KernelBase(trace, defaults) {
  const std::size_t n = static_cast<std::size_t>(picture_count_);
  for (std::vector<int>& table : last_of_type_) table.assign(n + 1, 0);
  for (std::size_t k = 1; k <= n; ++k) {
    for (std::vector<int>& table : last_of_type_) table[k] = table[k - 1];
    const std::size_t type = static_cast<std::size_t>(
        trace.type_of(static_cast<int>(k)));
    last_of_type_[type][k] = static_cast<int>(k);
  }
}

PhaseEwmaKernel::PhaseEwmaKernel(const Trace& trace,
                                 const PhaseEwmaEstimator& estimator,
                                 DefaultSizes defaults)
    : KernelBase(trace, defaults),
      by_phase_(&estimator.by_phase()),
      cursors_(estimator.by_phase().size(), 0) {}

TypeMeanKernel::TypeMeanKernel(const Trace& trace,
                               const TypeMeanEstimator& estimator,
                               DefaultSizes defaults)
    : KernelBase(trace, defaults),
      prefix_sums_(&estimator.prefix_sums()),
      prefix_counts_(&estimator.prefix_counts()) {}

StreamingKernel::StreamingKernel(lsm::trace::GopPattern pattern, double tau,
                                 DefaultSizes defaults)
    : pattern_(pattern),
      defaults_(defaults),
      tau_(tau),
      prefix_{0},
      next_threshold_(tau - 1e-12) {}

AnyKernel make_kernel(const Trace& trace, const SizeEstimator& estimator,
                      ExecutionPath path) {
  if (path == ExecutionPath::kReference) return {};
  const FastPathInfo info = estimator.fastpath_info();
  if (info.trace != &trace) return {};
  switch (info.kind) {
    case EstimatorKind::kPattern:
      return PatternKernel(trace, info.defaults);
    case EstimatorKind::kOracle:
      return OracleKernel(trace);
    case EstimatorKind::kLastSameType:
      return LastSameTypeKernel(trace, info.defaults);
    case EstimatorKind::kPhaseEwma:
      return PhaseEwmaKernel(
          trace, static_cast<const PhaseEwmaEstimator&>(estimator),
          info.defaults);
    case EstimatorKind::kTypeMean:
      return TypeMeanKernel(
          trace, static_cast<const TypeMeanEstimator&>(estimator),
          info.defaults);
    case EstimatorKind::kOther:
      break;
  }
  return {};
}

}  // namespace lsm::core::fastpath
