// Streaming smoother: the Figure 2 algorithm for a live, unbounded picture
// sequence. SmootherEngine consumes a complete Trace; a transport protocol
// instead learns S_i one picture at a time as the encoder finishes each
// picture. StreamingSmoother exposes exactly that interface:
//
//   StreamingSmoother smoother(pattern, params);
//   smoother.push(bits);            // picture i arrived (at time i*tau)
//   for (auto& send : smoother.drain())  notify(send.index, send.rate);
//   ...
//   smoother.finish();              // encoder reached sequence end
//   for (auto& send : smoother.drain())  ...   // tail decisions
//
// drain() releases the send record of picture i only when its decision
// instant t_i = max(d_{i-1}, (i-1+K) tau) lies within already-pushed time
// (every picture the paper's size(j, t_i) function would read as *actual*
// has been pushed), so the decision is identical to what a clairvoyant-free
// online implementation would compute. Sizes of unpushed pictures are
// estimated by walking back one pattern at a time (S_{j-N}), falling back
// to the paper's per-type defaults — the same estimator the batch engine
// uses. Until finish() is called the sequence is treated as unbounded: the
// lookahead window is never truncated.
//
// After finish(), remaining decisions use the batch engine's sequence-end
// semantics, so push-all / finish / drain-all reproduces SmootherEngine's
// output exactly (tested).
//
// Two properties make the smoother a building block for a long-running
// multiplexer (net/statmux.h) rather than just a study harness:
//
//   * Dirty tracking. The arrival frontier only moves on push()/finish(),
//     so those set a dirty flag and a drain that leaves nothing decidable
//     clears it. A scheduler owning many smoothers skips the clean ones in
//     O(1) — per-epoch cost scales with the streams whose frontier moved,
//     not with the total stream count.
//   * Bounded retention. No future decision can read a picture more than
//     ~2N behind the decision frontier (window sums start at the frontier;
//     estimates walk back at most one pattern below the arrival frontier),
//     so drain trims the prefix of pushed sizes that has become
//     unreachable. Prefix sums keep their ABSOLUTE values across a trim —
//     the same integers are subtracted — so trimmed output stays bitwise
//     identical to untrimmed (tested on multi-thousand-picture streams),
//     while an endless stream holds O(trim chunk + N) state instead of its
//     whole history.
#pragma once

#include <vector>

#include "core/estimator.h"
#include "core/fastpath.h"
#include "core/schedule.h"
#include "obs/tracer.h"

namespace lsm::core {

class StreamingSmoother {
 public:
  /// Throws InvalidParams on invalid params. `path` selects the
  /// devirtualized fast path (kAuto, default: decisions run on a
  /// StreamingKernel whose prefix-sum array grows with every push) or the
  /// walk-back reference implementation (kReference); outputs are bitwise
  /// identical.
  StreamingSmoother(lsm::trace::GopPattern pattern, SmootherParams params,
                    DefaultSizes defaults = {},
                    ExecutionPath path = ExecutionPath::kAuto);

  /// Rebinds this smoother to a brand-new stream, keeping every buffer's
  /// capacity — the slab-arena reuse path (net/statmux recycles smoother
  /// slots across admit/depart churn without allocating). Equivalent to
  /// assigning a freshly-constructed smoother, except no heap traffic and
  /// the tracer re-binds to the CURRENT ambient obs::StreamScope (call it
  /// inside the new stream's scope). Throws InvalidParams before touching
  /// any state if `params` is invalid.
  void reset(lsm::trace::GopPattern pattern, SmootherParams params,
             DefaultSizes defaults = {},
             ExecutionPath path = ExecutionPath::kAuto);

  /// Picture (pushed_count()+1) finished encoding; its arrival completes at
  /// push_count * tau. Throws std::logic_error after finish().
  void push(Bits size);

  /// Marks the end of the sequence. Idempotent.
  void finish();

  int pushed_count() const noexcept { return pushed_; }
  /// Index of the next picture to be decided (1-based).
  int next_picture() const noexcept { return next_; }
  bool finished() const noexcept { return finished_; }
  /// True once finish() was called and every picture has been decided.
  bool done() const noexcept { return finished_ && next_ > pushed_; }

  /// True when the frontier may have moved since the last drain: set by
  /// push()/finish(), cleared by a drain that leaves nothing decidable.
  /// O(1) — the skip test for dirty-set schedulers (net/statmux).
  bool dirty() const noexcept { return dirty_; }

  /// True when the next picture is decidable right now. O(1).
  bool decision_ready() const { return can_decide(); }

  /// 1-based index of the oldest pushed picture still retained (see the
  /// bounded-retention note above); everything older has been trimmed.
  int first_retained() const noexcept { return base_; }

  /// All send records whose decisions are now determined (possibly empty).
  std::vector<PictureSend> drain();

  /// Appends every currently-determined send to `out` (capacity reused by
  /// the caller — the allocation-free steady-state path) and returns the
  /// number appended. Clears the dirty flag.
  int drain_into(std::vector<PictureSend>& out);

 private:
  /// The size(j, t) function over the growing buffer.
  Bits size_at(int j, Seconds t) const;
  /// True when picture `next_` can be decided now.
  bool can_decide() const;
  PictureSend decide();
  /// Drops retained pictures no future decision can read (amortized O(1)).
  void maybe_trim();

  lsm::trace::GopPattern pattern_;
  SmootherParams params_;
  DefaultSizes defaults_;
  std::vector<Bits> sizes_;  ///< sizes_[k] = S_{base_ + k}
  fastpath::StreamingKernel kernel_;
  bool use_fast_path_;
  bool finished_ = false;
  bool dirty_ = false;
  int pushed_ = 0;  ///< total pictures pushed (logical, survives trims)
  int base_ = 1;    ///< logical index of sizes_[0]
  /// Same emission taxonomy as SmootherEngine (DESIGN.md §3.5); the
  /// decision values are bitwise-equal across paths, so so are the traces.
  obs::StreamTracer tracer_;

  int next_ = 1;
  Seconds depart_ = 0.0;
  Rate rate_ = 0.0;
};

}  // namespace lsm::core
