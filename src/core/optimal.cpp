#include "core/optimal.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lsm::core {

namespace {

constexpr double kSlopeEps = 1e-9;

struct CorridorPoint {
  Seconds t = 0.0;
  double lo = 0.0;  ///< minimum cumulative bits sent by t (deadlines)
  double hi = 0.0;  ///< maximum cumulative bits sent by t (availability)
};

/// Optional receiver-buffer constraint (see header).
struct BufferSpec {
  double bits = 0.0;
  Seconds playout_offset = 0.0;
};

/// Builds the corridor grid for `trace` under delay bound D and an optional
/// receiver-buffer constraint.
std::vector<CorridorPoint> build_corridor(const lsm::trace::Trace& trace,
                                          Seconds D,
                                          const BufferSpec* buffer) {
  const int n = trace.picture_count();
  const double tau = trace.tau();
  if (!(D > tau)) {
    throw std::invalid_argument(
        "smooth_offline_optimal: requires D > tau for a feasible corridor");
  }

  std::vector<double> cum(static_cast<std::size_t>(n) + 1, 0.0);
  for (int i = 1; i <= n; ++i) {
    cum[static_cast<std::size_t>(i)] =
        cum[static_cast<std::size_t>(i - 1)] +
        static_cast<double>(trace.size_of(i));
  }
  if (buffer != nullptr) {
    if (!(buffer->playout_offset >= tau)) {
      throw std::invalid_argument(
          "smooth_offline_optimal_buffered: playout_offset must be >= tau");
    }
    for (int i = 1; i <= n; ++i) {
      if (static_cast<double>(trace.size_of(i)) > buffer->bits) {
        throw std::invalid_argument(
            "smooth_offline_optimal_buffered: buffer smaller than a picture");
      }
    }
  }

  Seconds horizon = static_cast<double>(n - 1) * tau + D;
  if (buffer != nullptr) {
    horizon = std::max(
        horizon, buffer->playout_offset + static_cast<double>(n - 1) * tau);
  }
  // Terminus strictly after the last constraint so the buffer bound there
  // is total + B (everything has been played out).
  const Seconds terminus = horizon + 0.5 * tau;

  std::vector<Seconds> times;
  times.reserve(static_cast<std::size_t>(3 * n) + 2);
  times.push_back(0.0);
  for (int i = 1; i <= n; ++i) {
    times.push_back(static_cast<double>(i) * tau);
    times.push_back(static_cast<double>(i - 1) * tau + D);
    if (buffer != nullptr) {
      times.push_back(buffer->playout_offset +
                      static_cast<double>(i - 1) * tau);
    }
  }
  times.push_back(terminus);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end(),
                          [](Seconds a, Seconds b) {
                            return std::abs(a - b) < 1e-12;
                          }),
              times.end());
  while (!times.empty() && times.back() > terminus + 1e-12) times.pop_back();

  std::vector<CorridorPoint> grid;
  grid.reserve(times.size());
  for (const Seconds t : times) {
    CorridorPoint point;
    point.t = t;
    // Availability approached from the left: pictures with i*tau strictly
    // before t have fully arrived and are sendable.
    const int arrived = std::min(
        n, static_cast<int>(std::floor(t / tau - 1e-12)));
    point.hi = cum[static_cast<std::size_t>(std::max(0, arrived))];
    // Deadlines are inclusive: pictures with (i-1)tau + D <= t must be out.
    const int due = std::clamp(
        static_cast<int>(std::floor((t - D) / tau + 1e-12)) + 1, 0, n);
    point.lo = cum[static_cast<std::size_t>(due)];
    if (buffer != nullptr) {
      // Playout lower bound (inclusive): picture i fully delivered by
      // playout_offset + (i-1) tau.
      const int played_inclusive = std::clamp(
          static_cast<int>(std::floor(
              (t - buffer->playout_offset) / tau + 1e-12)) + 1,
          0, n);
      point.lo = std::max(point.lo,
                          cum[static_cast<std::size_t>(played_inclusive)]);
      // Buffer upper bound (exclusive of a removal exactly at t): at most
      // B bits beyond what has already been played out.
      const int played_exclusive = std::clamp(
          static_cast<int>(std::floor(
              (t - buffer->playout_offset) / tau - 1e-12)) + 1,
          0, n);
      point.hi = std::min(
          point.hi,
          buffer->bits + cum[static_cast<std::size_t>(played_exclusive)]);
    }
    if (point.lo > point.hi + 1e-6) {
      throw std::invalid_argument(
          "smooth_offline_optimal: corridor infeasible");
    }
    grid.push_back(point);
  }
  return grid;
}

/// Taut string through the corridor plus per-picture departures.
OptimalResult solve_corridor(const lsm::trace::Trace& trace,
                             const std::vector<CorridorPoint>& grid) {
  const std::size_t m = grid.size() - 1;

  std::vector<CorridorPoint> vertices;  // (t, x) path vertices; lo==hi==x
  Seconds cur_t = grid[0].t;
  double cur_x = grid[0].lo;  // == 0
  vertices.push_back(CorridorPoint{cur_t, cur_x, cur_x});
  std::size_t k0 = 0;
  while (k0 < m) {
    double min_up = std::numeric_limits<double>::infinity();
    double max_lo = -std::numeric_limits<double>::infinity();
    std::size_t pin_hi = k0, pin_lo = k0;
    bool bent = false;
    for (std::size_t k = k0 + 1; k <= m; ++k) {
      const double dt = grid[k].t - cur_t;
      const double up = (grid[k].hi - cur_x) / dt;
      const double lo = (grid[k].lo - cur_x) / dt;
      if (lo > min_up + kSlopeEps) {
        // Pulled over the availability/buffer staircase: bend on it.
        cur_t = grid[pin_hi].t;
        cur_x = grid[pin_hi].hi;
        k0 = pin_hi;
        bent = true;
        break;
      }
      if (up < max_lo - kSlopeEps) {
        // Pulled under the deadline staircase: bend on it.
        cur_t = grid[pin_lo].t;
        cur_x = grid[pin_lo].lo;
        k0 = pin_lo;
        bent = true;
        break;
      }
      if (up < min_up) {
        min_up = up;
        pin_hi = k;
      }
      if (lo > max_lo) {
        max_lo = lo;
        pin_lo = k;
      }
    }
    if (!bent) {
      // Straight run to the terminus; there lo == total and hi >= total,
      // so aim at the lowest admissible endpoint (all bits delivered).
      cur_t = grid[m].t;
      cur_x = grid[m].lo;
      k0 = m;
    }
    vertices.push_back(CorridorPoint{cur_t, cur_x, cur_x});
  }

  OptimalResult result;
  std::vector<RateSegment> segments;
  segments.reserve(vertices.size());
  for (std::size_t v = 1; v < vertices.size(); ++v) {
    const double dt = vertices[v].t - vertices[v - 1].t;
    if (dt <= 0.0) continue;
    const Rate rate = (vertices[v].lo - vertices[v - 1].lo) / dt;
    segments.push_back(
        RateSegment{vertices[v - 1].t, vertices[v].t, std::max(0.0, rate)});
    result.peak_rate = std::max(result.peak_rate, rate);
  }
  result.schedule = RateSchedule(std::move(segments));

  // Per-picture departure times: the first instant X(t) reaches cum_i.
  const int n = trace.picture_count();
  const double tau = trace.tau();
  result.departures.resize(static_cast<std::size_t>(n));
  result.delays.resize(static_cast<std::size_t>(n));
  double cum = 0.0;
  std::size_t v = 1;
  double x_prev = vertices[0].lo;
  for (int i = 1; i <= n; ++i) {
    cum += static_cast<double>(trace.size_of(i));
    while (v < vertices.size() && vertices[v].lo < cum - 1e-6) {
      x_prev = vertices[v].lo;
      ++v;
    }
    Seconds departure;
    if (v >= vertices.size()) {
      departure = vertices.back().t;
    } else {
      const double x0 = x_prev;
      const double x1 = vertices[v].lo;
      const Seconds t0 = vertices[v - 1].t;
      const Seconds t1 = vertices[v].t;
      departure = x1 > x0 ? t0 + (cum - x0) / (x1 - x0) * (t1 - t0) : t1;
    }
    result.departures[static_cast<std::size_t>(i - 1)] = departure;
    result.delays[static_cast<std::size_t>(i - 1)] =
        departure - static_cast<double>(i - 1) * tau;
  }
  return result;
}

}  // namespace

Seconds OptimalResult::max_delay() const noexcept {
  Seconds worst = 0.0;
  for (const Seconds d : delays) worst = std::max(worst, d);
  return worst;
}

OptimalResult smooth_offline_optimal(const lsm::trace::Trace& trace,
                                     Seconds D) {
  return solve_corridor(trace, build_corridor(trace, D, nullptr));
}

OptimalResult smooth_offline_optimal_buffered(const lsm::trace::Trace& trace,
                                              Seconds D,
                                              double receiver_buffer_bits,
                                              Seconds playout_offset) {
  const BufferSpec buffer{receiver_buffer_bits, playout_offset};
  return solve_corridor(trace, build_corridor(trace, D, &buffer));
}

Rate minimal_feasible_peak(const lsm::trace::Trace& trace, Seconds D) {
  const std::vector<CorridorPoint> grid = build_corridor(trace, D, nullptr);
  Rate bound = 0.0;
  for (std::size_t j = 0; j < grid.size(); ++j) {
    for (std::size_t k = j + 1; k < grid.size(); ++k) {
      if (grid[k].lo <= grid[j].hi) continue;
      bound = std::max(bound,
                       (grid[k].lo - grid[j].hi) / (grid[k].t - grid[j].t));
    }
  }
  return bound;
}

}  // namespace lsm::core
