// AVX-512F tier of the dual-bound fold: the AVX2 kernel (fold_avx2.cpp)
// widened again — each 512-bit vector carries FOUR lookahead steps in the
// [lower, -upper, ...] lane layout, so one vdivpd zmm retires four steps'
// worth of bound divisions, and the lane predicates move into opmask
// registers. Compiled with -mavx512f for THIS translation unit only and
// reached solely through fold_bounds() after the dispatcher has checked
// the active level. CMake only compiles this tier when the AVX2 tier is
// also available, so the shallow-fold fallback below always links. The
// bitwise-identity argument is the same per-lane-IEEE-ops + max/min
// associativity one as for SSE2/AVX2 (see bounds_fold.h).
#include "core/bounds_fold.h"

#if defined(LSM_CORE_HAVE_AVX512)

#include <immintrin.h>

#include "core/bounds.h"

namespace lsm::core::detail {

BoundsFoldResult fold_bounds_avx512(const double* sums, int n, int i,
                                    Seconds t_i,
                                    const SmootherParams& params) noexcept {
  if (n < 16) {
    // Below two full vectors the 256-bit tier amortizes its fixed costs
    // better; results are identical either way.
    return fold_bounds_avx2(sums, n, i, t_i, params);
  }
  const __m512d tau8 = _mm512_set1_pd(params.tau);
  const __m512d t_i8 = _mm512_set1_pd(t_i);
  const __m512d d_offset = _mm512_set_pd(0.0, params.D, 0.0, params.D,
                                         0.0, params.D, 0.0, params.D);
  const __m512d neg_up = _mm512_set_pd(-0.0, 0.0, -0.0, 0.0,
                                       -0.0, 0.0, -0.0, 0.0);
  const __m512d invalid =
      _mm512_set_pd(-kUnbounded, kUnbounded, -kUnbounded, kUnbounded,
                    -kUnbounded, kUnbounded, -kUnbounded, kUnbounded);
  const __m512d zero = _mm512_setzero_pd();
  const __m512d eight = _mm512_set1_pd(8.0);
  // Lane k holds step h + k/2: even lanes [i-1+h+k/2]*tau + D - t_i for
  // the lower bound, odd lanes [K+i+h+k/2]*tau - t_i for the upper.
  const double low0 = static_cast<double>(i - 1);
  const double up0 = static_cast<double>(params.K + i);
  __m512d idx0 = _mm512_set_pd(up0 + 3.0, low0 + 3.0, up0 + 2.0, low0 + 2.0,
                               up0 + 1.0, low0 + 1.0, up0, low0);
  __m512d idx1 = _mm512_add_pd(idx0, _mm512_set1_pd(4.0));
  const __m512d init = _mm512_set_pd(-kUnbounded, 0.0, -kUnbounded, 0.0,
                                     -kUnbounded, 0.0, -kUnbounded, 0.0);
  __m512d run0 = init;
  __m512d run1 = init;
  // Duplicates [s(h) .. s(h+3)] into [s(h), s(h), .. s(h+3), s(h+3)].
  const __m512i dup = _mm512_set_epi64(3, 3, 2, 2, 1, 1, 0, 0);
  const auto block = [&](const double* s4, __m512d idx, __m512d& run) {
    const __m512d quad = _mm512_castpd256_pd512(_mm256_loadu_pd(s4));
    const __m512d s = _mm512_permutexvar_pd(dup, quad);
    const __m512d den = _mm512_sub_pd(
        _mm512_add_pd(_mm512_mul_pd(idx, tau8), d_offset), t_i8);
    // _mm512_xor_pd needs AVX512DQ; the integer xor is plain AVX512F and
    // the bit-casts are free.
    const __m512d v = _mm512_castsi512_pd(
        _mm512_xor_si512(_mm512_castpd_si512(_mm512_div_pd(s, den)),
                         _mm512_castpd_si512(neg_up)));
    const __mmask8 ok = _mm512_cmp_pd_mask(den, zero, _CMP_GT_OQ);
    run = _mm512_max_pd(run, _mm512_mask_blend_pd(ok, invalid, v));
  };
  int h = 0;
  for (; h + 7 < n; h += 8) {
    block(sums + h, idx0, run0);
    idx0 = _mm512_add_pd(idx0, eight);
    block(sums + h + 4, idx1, run1);
    idx1 = _mm512_add_pd(idx1, eight);
  }
  // Fold the accumulators down to one [lower max, -upper min] pair, then
  // finish the up-to-seven tail steps at 128-bit width (exact SSE2 lane).
  const __m512d both = _mm512_max_pd(run0, run1);
  const __m256d half = _mm256_max_pd(_mm512_castpd512_pd256(both),
                                     _mm512_extractf64x4_pd(both, 1));
  __m128d run = _mm_max_pd(_mm256_castpd256_pd128(half),
                           _mm256_extractf128_pd(half, 1));
  if (h < n) {
    const __m128d tau2 = _mm_set1_pd(params.tau);
    const __m128d t_i2 = _mm_set1_pd(t_i);
    const __m128d off2 = _mm_set_pd(0.0, params.D);
    const __m128d neg2 = _mm_set_pd(-0.0, 0.0);
    const __m128d inv2 = _mm_set_pd(-kUnbounded, kUnbounded);
    const __m128d one2 = _mm_set1_pd(1.0);
    __m128d idx = _mm_set_pd(up0 + static_cast<double>(h),
                             low0 + static_cast<double>(h));
    for (; h < n; ++h) {
      const __m128d den =
          _mm_sub_pd(_mm_add_pd(_mm_mul_pd(idx, tau2), off2), t_i2);
      const __m128d v =
          _mm_xor_pd(_mm_div_pd(_mm_set1_pd(sums[h]), den), neg2);
      const __m128d ok = _mm_cmpgt_pd(den, _mm_setzero_pd());
      run = _mm_max_pd(
          run, _mm_or_pd(_mm_and_pd(ok, v), _mm_andnot_pd(ok, inv2)));
      idx = _mm_add_pd(idx, one2);
    }
  }
  alignas(16) double folded[2];
  _mm_store_pd(folded, run);
  return {folded[0], -folded[1]};
}

}  // namespace lsm::core::detail

#endif  // LSM_CORE_HAVE_AVX512
