#include "core/simd_dispatch.h"

#include <atomic>
#include <cstdlib>

#include "obs/metrics.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define LSM_SIMD_X86 1
#else
#define LSM_SIMD_X86 0
#endif

namespace lsm::simd {
namespace {

#if LSM_SIMD_X86
// XCR0 state-component bits the OS must have enabled before the matching
// instructions are usable: SSE+AVX ymm state for AVX2, plus the opmask /
// upper-zmm / hi16-zmm trio for AVX-512.
constexpr unsigned kXcr0AvxMask = 0x6;        // bits 1 (SSE) and 2 (AVX)
constexpr unsigned kXcr0Avx512Mask = 0xE0;    // bits 5..7

unsigned read_xcr0() noexcept {
  unsigned eax = 0;
  unsigned edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return eax;
}

SimdLevel probe_hardware() noexcept {
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) {
    return SimdLevel::kScalar;
  }
  // SSE2 is architecturally guaranteed on x86-64, but check anyway so the
  // probe never claims more than cpuid states.
  if ((edx & bit_SSE2) == 0) {
    return SimdLevel::kScalar;
  }
  // AVX and beyond need OSXSAVE (the OS exposes xgetbv) and the ymm state
  // components enabled in XCR0; cpuid alone only says the silicon exists.
  const bool osxsave = (ecx & bit_OSXSAVE) != 0;
  const bool avx = (ecx & bit_AVX) != 0;
  if (!osxsave || !avx) {
    return SimdLevel::kSse2;
  }
  const unsigned xcr0 = read_xcr0();
  if ((xcr0 & kXcr0AvxMask) != kXcr0AvxMask) {
    return SimdLevel::kSse2;
  }
  unsigned eax7 = 0;
  unsigned ebx7 = 0;
  unsigned ecx7 = 0;
  unsigned edx7 = 0;
  // The kAvx2 tier requires FMA as well, treating it as part of the
  // platform generation: every AVX2 part ever shipped has FMA, and gating
  // on both keeps the door open for kernels that use explicit FMA
  // intrinsics without a second feature check. A hypothetical AVX2-only
  // CPU just stays on the SSE2 tier.
  const bool fma = (ecx & bit_FMA) != 0;
  if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) == 0 ||
      (ebx7 & bit_AVX2) == 0 || !fma) {
    return SimdLevel::kSse2;
  }
  if ((ebx7 & bit_AVX512F) == 0 ||
      (xcr0 & kXcr0Avx512Mask) != kXcr0Avx512Mask) {
    return SimdLevel::kAvx2;
  }
  return SimdLevel::kAvx512;
}
#else
SimdLevel probe_hardware() noexcept { return SimdLevel::kScalar; }
#endif

SimdLevel clamp_to_detected(SimdLevel level) noexcept {
  const SimdLevel detected = detected_simd_level();
  return level > detected ? detected : level;
}

void publish_to_global() {
  publish_simd_level(obs::Registry::global());
}

// -1 = not yet initialized; otherwise a SimdLevel value. The env override
// is folded in exactly once, on the first active_simd_level() call, so
// set_active_simd_level() wins over the environment afterwards.
std::atomic<int>& active_state() noexcept {
  static std::atomic<int> state{-1};
  return state;
}

SimdLevel initial_level() noexcept {
  SimdLevel level = detected_simd_level();
  if (const char* env = std::getenv("LSM_SIMD_LEVEL")) {
    if (const auto forced = parse_simd_level(env)) {
      level = clamp_to_detected(*forced);
    }
  }
  return level;
}

}  // namespace

SimdLevel detected_simd_level() noexcept {
  static const SimdLevel detected = probe_hardware();
  return detected;
}

SimdLevel active_simd_level() noexcept {
  std::atomic<int>& state = active_state();
  int raw = state.load(std::memory_order_relaxed);
  if (raw < 0) {
    const SimdLevel level = initial_level();
    // First caller wins; a concurrent set_active_simd_level() that landed
    // between the load and this exchange is preserved.
    int expected = -1;
    if (state.compare_exchange_strong(expected, static_cast<int>(level),
                                      std::memory_order_relaxed)) {
      publish_to_global();
      return level;
    }
    raw = expected;
  }
  return static_cast<SimdLevel>(raw);
}

SimdLevel set_active_simd_level(SimdLevel level) noexcept {
  const SimdLevel installed = clamp_to_detected(level);
  active_state().store(static_cast<int>(installed),
                       std::memory_order_relaxed);
  publish_to_global();
  return installed;
}

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

std::optional<SimdLevel> parse_simd_level(std::string_view name) noexcept {
  if (name == "scalar") {
    return SimdLevel::kScalar;
  }
  if (name == "sse2") {
    return SimdLevel::kSse2;
  }
  if (name == "avx2") {
    return SimdLevel::kAvx2;
  }
  if (name == "avx512") {
    return SimdLevel::kAvx512;
  }
  return std::nullopt;
}

void publish_simd_level(obs::Registry& registry) {
  registry.gauge("runtime.simd_level")
      .set(static_cast<double>(active_simd_level()));
  registry.gauge("runtime.simd_level_detected")
      .set(static_cast<double>(detected_simd_level()));
}

}  // namespace lsm::simd
