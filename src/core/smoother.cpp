#include "core/smoother.h"

#include <algorithm>

namespace lsm::core {

Seconds SmoothingResult::max_delay() const noexcept {
  Seconds worst = 0.0;
  for (const PictureSend& send : sends) worst = std::max(worst, send.delay);
  return worst;
}

int SmoothingResult::rate_change_count() const noexcept {
  int count = 0;
  for (const StepDiagnostics& d : diagnostics) count += d.rate_changed ? 1 : 0;
  return count;
}

SmoothingResult smooth(const lsm::trace::Trace& trace,
                       const SmootherParams& params,
                       const SizeEstimator& estimator, Variant variant,
                       ExecutionPath path) {
  SmoothingResult result;
  smooth_into(trace, params, estimator, variant, result, path);
  return result;
}

void smooth_into(const lsm::trace::Trace& trace, const SmootherParams& params,
                 const SizeEstimator& estimator, Variant variant,
                 SmoothingResult& out, ExecutionPath path) {
  SmootherEngine engine(trace, params, estimator, variant, path);
  out.params = params;
  out.variant = variant;
  out.estimator_name = estimator.name();
  out.sends.clear();
  out.diagnostics.clear();
  out.sends.reserve(static_cast<std::size_t>(trace.picture_count()));
  out.diagnostics.reserve(static_cast<std::size_t>(trace.picture_count()));
  engine.run_into(out.sends, out.diagnostics);
}

SmoothingResult smooth_basic(const lsm::trace::Trace& trace,
                             const SmootherParams& params) {
  PatternEstimator estimator(trace);
  return smooth(trace, params, estimator, Variant::kBasic);
}

SmoothingResult smooth_modified(const lsm::trace::Trace& trace,
                                const SmootherParams& params) {
  PatternEstimator estimator(trace);
  return smooth(trace, params, estimator, Variant::kMovingAverage);
}

}  // namespace lsm::core
