#include "core/smoother.h"

#include <algorithm>

namespace lsm::core {

Seconds SmoothingResult::max_delay() const noexcept {
  Seconds worst = 0.0;
  for (const PictureSend& send : sends) worst = std::max(worst, send.delay);
  return worst;
}

int SmoothingResult::rate_change_count() const noexcept {
  int count = 0;
  for (const StepDiagnostics& d : diagnostics) count += d.rate_changed ? 1 : 0;
  return count;
}

SmoothingResult smooth(const lsm::trace::Trace& trace,
                       const SmootherParams& params,
                       const SizeEstimator& estimator, Variant variant) {
  SmootherEngine engine(trace, params, estimator, variant);
  SmoothingResult result;
  result.params = params;
  result.variant = variant;
  result.estimator_name = estimator.name();
  result.sends.reserve(static_cast<std::size_t>(trace.picture_count()));
  result.diagnostics.reserve(static_cast<std::size_t>(trace.picture_count()));
  while (!engine.done()) {
    result.sends.push_back(engine.step());
    result.diagnostics.push_back(engine.last_diagnostics());
  }
  return result;
}

SmoothingResult smooth_basic(const lsm::trace::Trace& trace,
                             const SmootherParams& params) {
  PatternEstimator estimator(trace);
  return smooth(trace, params, estimator, Variant::kBasic);
}

SmoothingResult smooth_modified(const lsm::trace::Trace& trace,
                                const SmootherParams& params) {
  PatternEstimator estimator(trace);
  return smooth(trace, params, estimator, Variant::kMovingAverage);
}

}  // namespace lsm::core
