// Rate schedules: the output of every smoother in this library.
//
// A schedule is the piecewise-constant channel rate function r(t) together
// with (when produced by a per-picture smoother) the per-picture send
// records (t_i, d_i, r_i, delay_i) of the paper's system model.
#pragma once

#include <vector>

#include "core/params.h"

namespace lsm::core {

/// Send record for one picture (paper Eqs. 2-4).
struct PictureSend {
  int index = 0;        ///< 1-based picture index i
  Seconds start = 0.0;  ///< t_i, when the server begins sending picture i
  Seconds depart = 0.0; ///< d_i = t_i + S_i / r_i
  Rate rate = 0.0;      ///< r_i in bits/s
  Seconds delay = 0.0;  ///< d_i - (i-1) tau
  Bits bits = 0;        ///< S_i
};

/// One constant-rate interval of r(t).
struct RateSegment {
  Seconds begin = 0.0;
  Seconds end = 0.0;
  Rate rate = 0.0;
};

/// Piecewise-constant rate function. r(t) = 0 outside all segments.
/// Invariants: segments are sorted, non-overlapping, with begin < end and
/// rate >= 0.
class RateSchedule {
 public:
  RateSchedule() = default;

  /// Throws std::invalid_argument if segments violate the invariants.
  explicit RateSchedule(std::vector<RateSegment> segments);

  /// Builds the schedule of a per-picture smoother: one segment per send
  /// (adjacent equal-rate segments are kept separate so that per-picture
  /// structure is preserved; queries are unaffected).
  static RateSchedule from_sends(const std::vector<PictureSend>& sends);

  const std::vector<RateSegment>& segments() const noexcept {
    return segments_;
  }
  bool empty() const noexcept { return segments_.empty(); }

  /// First instant with a defined rate, 0 if empty.
  Seconds start_time() const noexcept;
  /// Last instant with a defined rate, 0 if empty.
  Seconds end_time() const noexcept;

  /// r(t); 0 outside segments. At a breakpoint the right-continuous value is
  /// returned.
  Rate rate_at(Seconds t) const noexcept;

  /// Integral of r over [a, b] in bits. Requires a <= b.
  double integral(Seconds a, Seconds b) const;

  /// Maximum rate over all segments (0 if empty).
  Rate max_rate() const noexcept;

  /// Sorted unique segment boundary times.
  std::vector<Seconds> breakpoints() const;

  /// Time-shifted copy: the returned schedule's value at t equals this
  /// schedule's value at t + shift (i.e. the graph moves left by `shift`
  /// when shift > 0 — matching R(t + (N-K) tau) in paper Eq. 16).
  RateSchedule shifted_left(Seconds shift) const;

 private:
  std::vector<RateSegment> segments_;
};

}  // namespace lsm::core
