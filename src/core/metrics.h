// Quantitative smoothness measures (paper, Section 5.2):
//
//   * area difference (Eq. 16) between r(t) and the time-shifted ideal
//     R(t + (N-K) tau);
//   * number of rate changes over [0, T];
//   * maximum of r(t) over [0, T];
//   * standard deviation of r(t) over [0, T].
//
// Figures 6-8 plot these four measures against D, H, and K respectively.
#pragma once

#include "core/ideal.h"
#include "core/schedule.h"
#include "core/smoother.h"

namespace lsm::core {

/// Time-weighted mean and standard deviation of a rate function over [a, b]
/// (r(t) = 0 where the schedule is undefined).
struct RateMoments {
  Rate mean = 0.0;
  Rate stddev = 0.0;
};

RateMoments rate_moments(const RateSchedule& schedule, Seconds a, Seconds b);

/// Eq. 16: integral over [0, T] of [r(t) - R(t + shift)]^+ divided by the
/// integral of R(t + shift); `ideal` is evaluated shifted left by `shift`.
/// Requires T > 0 and a nonzero denominator.
double area_difference(const RateSchedule& smoothed, const RateSchedule& ideal,
                       Seconds shift, Seconds T);

/// The paper's four measures for one smoothing run of `trace`.
struct SmoothnessMetrics {
  double area_difference = 0.0;
  int rate_changes = 0;
  Rate max_rate = 0.0;
  Rate rate_stddev = 0.0;
  Rate rate_mean = 0.0;
  Seconds max_delay = 0.0;
};

/// Computes all measures. The ideal schedule is derived from `trace`; the
/// shift is (N - K) tau per Eq. 16; moments and maxima are taken over
/// [0, T] with T = the smoothed schedule's end time.
SmoothnessMetrics evaluate(const SmoothingResult& result,
                           const lsm::trace::Trace& trace);

/// Magnitudes of the rate jumps a schedule makes. Section 4.4 describes the
/// Eq. 15 variant as producing "numerous small rate changes over time" —
/// this profile quantifies "small": the modified algorithm makes many more
/// changes, each a fraction of the size of the basic algorithm's jumps.
struct RateChangeProfile {
  int changes = 0;               ///< number of rate changes (excl. start-up)
  Rate mean_magnitude = 0.0;     ///< mean |r_i - r_{i-1}| over changes
  Rate max_magnitude = 0.0;
  double mean_relative = 0.0;    ///< mean magnitude / time-average rate
};
RateChangeProfile rate_change_profile(const SmoothingResult& result);

/// Inverts the Figure 6 design tradeoff: the smallest delay bound D at
/// which the basic algorithm's max rate does not exceed `target_peak`
/// (searched to `precision` seconds over [ (K+1) tau, d_max ]). Returns a
/// negative value when even d_max cannot meet the target. This is the
/// question an application actually asks: "how much delay do I need to
/// afford to fit this channel?"
Seconds min_delay_for_peak(const lsm::trace::Trace& trace,
                           const SmootherParams& base, Rate target_peak,
                           Seconds d_max = 2.0, Seconds precision = 1e-3);

}  // namespace lsm::core
