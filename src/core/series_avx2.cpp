// AVX2 tier of add_series. Compiled with -mavx2 in its own translation
// unit (see core/CMakeLists.txt); only reached when runtime dispatch says
// the CPU has AVX2. Element-wise adds only — lanes never combine, so the
// result is trivially bit-identical to the scalar tier (series_ops.h).
#include <immintrin.h>

#include "core/series_ops.h"

namespace lsm::core::detail {

void add_series_avx2(double* dst, const double* src, std::size_t n) noexcept {
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    _mm256_storeu_pd(dst + k, _mm256_add_pd(_mm256_loadu_pd(dst + k),
                                            _mm256_loadu_pd(src + k)));
    _mm256_storeu_pd(dst + k + 4,
                     _mm256_add_pd(_mm256_loadu_pd(dst + k + 4),
                                   _mm256_loadu_pd(src + k + 4)));
  }
  for (; k + 4 <= n; k += 4) {
    _mm256_storeu_pd(dst + k, _mm256_add_pd(_mm256_loadu_pd(dst + k),
                                            _mm256_loadu_pd(src + k)));
  }
  for (; k < n; ++k) dst[k] += src[k];
}

}  // namespace lsm::core::detail
