// Internal: the rate-selection inner loop of Figure 2, shared by the batch
// SmootherEngine and the StreamingSmoother so the two cannot diverge. See
// engine.h for the algorithm documentation.
#pragma once

#include <algorithm>
#include <cmath>

#include "core/bounds.h"
#include "core/engine.h"

namespace lsm::core::detail {

struct RateDecision {
  Rate rate = 0.0;
  StepDiagnostics diag{};
};

/// Selects r_i for picture i deciding at time `t_i`.
///  - `last_picture` bounds the lookahead (i + h <= last_picture); pass a
///    huge value for an unbounded (streaming, pre-finish) sequence.
///  - `size_at(j, t)` is the paper's size function (actual or estimated).
///  - `previous_rate` is r_{i-1} (ignored for i == 1).
///  - `fallback_bits` is the value used to realize a rate if every bound is
///    ill-defined (only reachable outside the Theorem 1 regime).
template <typename SizeFn>
RateDecision select_rate(int i, Seconds t_i, int last_picture,
                         Rate previous_rate, const SmootherParams& params,
                         int pattern_length, Variant variant,
                         double fallback_bits, SizeFn&& size_at) {
  const double tau = params.tau;
  int h = 0;
  double sum = 0.0;
  Rate lower = 0.0;
  Rate upper = kUnbounded;
  Rate lower_old = 0.0;
  Rate upper_old = kUnbounded;
  bool early_exit = false;
  while (true) {
    if (i + h > last_picture) break;  // sequence end: nothing further
    sum += static_cast<double>(size_at(i + h, t_i));
    lower_old = lower;
    upper_old = upper;
    const Rate lo = lookahead_lower_bound(sum, i, h, t_i, params);
    const Rate up = lookahead_upper_bound(sum, i, h, t_i, params);
    lower = std::max(lo, lower_old);
    upper = std::min(up, upper_old);
    ++h;
    if (lower > upper) {
      early_exit = true;
      break;
    }
    if (h >= params.H) break;
  }

  Rate rate = previous_rate;
  if (early_exit) {
    // Section 4.4: either the new lower bound rose above the standing
    // interval (upper == upper_old; send as fast as allowed) or the new
    // upper fell below it (lower == lower_old; send as slow as allowed).
    rate = (lower > lower_old) ? upper : lower;
  } else if (i == 1) {
    rate = std::isfinite(upper) ? (lower + upper) / 2.0 : 2.0 * lower;
  } else {
    if (variant == Variant::kMovingAverage) {
      rate = sum / (static_cast<double>(pattern_length) * tau);
    }
    if (rate > upper) {
      rate = upper;
    } else if (rate < lower) {
      rate = lower;
    }
  }

  // Realizability fallback: never emit an infinite or non-positive rate.
  // Only reachable outside the Theorem 1 regime (see engine.h).
  if (!std::isfinite(rate) || rate <= 0.0) {
    rate = std::isfinite(lower) && lower > 0.0   ? lower
           : std::isfinite(upper) && upper > 0.0 ? upper
                                                 : fallback_bits / tau;
  }

  // Discrete-rate channel: snap to the nearest quantum multiple that stays
  // inside [lower, upper]; keep the exact rate when no multiple fits.
  if (params.rate_quantum > 0.0 && std::isfinite(rate)) {
    const double quantum = params.rate_quantum;
    double snapped = std::round(rate / quantum) * quantum;
    if (snapped < lower) snapped += quantum;
    if (snapped > upper && std::isfinite(upper)) snapped -= quantum;
    if (snapped >= lower && (!std::isfinite(upper) || snapped <= upper) &&
        snapped > 0.0) {
      rate = snapped;
    }
  }

  RateDecision decision;
  decision.rate = rate;
  decision.diag.lookahead_used = h;
  decision.diag.early_exit = early_exit;
  decision.diag.lower = lower;
  decision.diag.upper = upper;
  decision.diag.rate_changed =
      i == 1 || std::abs(rate - previous_rate) >
                    1e-9 * std::max(std::abs(rate), 1.0);
  return decision;
}

}  // namespace lsm::core::detail
