// Internal: the rate-selection inner loop of Figure 2, shared by the batch
// SmootherEngine and the StreamingSmoother so the two cannot diverge. See
// engine.h for the algorithm documentation.
//
// The loop exists in two skins over one body:
//
//   select_rate()        — the reference path: a virtual-dispatch size(j, t)
//                          callback per lookahead picture, exactly the
//                          paper's formulation.
//   select_rate_kernel() — the fast path: a sealed estimator kernel
//                          (fastpath.h) supplies the lookahead window sums
//                          from prefix-sum arrays with all per-call
//                          invariants hoisted to once per step.
//
// Both delegate to select_rate_sums(), which owns every bound comparison and
// the rate decision, so the two paths cannot diverge in logic. They also
// cannot diverge in arithmetic: picture sizes are integral Bits, every
// partial window sum is an integer far below 2^53, and a sequential double
// accumulation of such integers is exact — so the prefix-sum differences the
// kernel path feeds in are bit-for-bit the same doubles the reference path
// accumulates, and the emitted schedules are bitwise identical (enforced by
// tests/core/fastpath_identity_test.cpp).
#pragma once

#include <algorithm>
#include <cmath>

#include "core/bounds.h"
#include "core/bounds_fold.h"
#include "core/engine.h"
#include "core/fastpath.h"

namespace lsm::core::detail {

struct RateDecision {
  Rate rate = 0.0;
  StepDiagnostics diag{};
};

/// Bound windows tracked on the stack by the lane-split loop below; lookahead
/// depths beyond this run the plain sequential loop (identical results).
inline constexpr int kMaxTrackedLookahead = 64;

/// Turns the loop outcome into the rate decision (Figure 2's selection rule
/// plus the Section 4.4 early-exit rule and the engine.h boundary
/// refinements). Shared by both loop shapes below.
inline RateDecision finish_decision(int i, int h, double sum, bool early_exit,
                                    Rate lower, Rate upper, Rate lower_old,
                                    Rate previous_rate,
                                    const SmootherParams& params,
                                    int pattern_length, Variant variant,
                                    double fallback_bits) {
  const double tau = params.tau;
  Rate rate = previous_rate;
  if (early_exit) {
    // Section 4.4: either the new lower bound rose above the standing
    // interval (upper == upper_old; send as fast as allowed) or the new
    // upper fell below it (lower == lower_old; send as slow as allowed).
    rate = (lower > lower_old) ? upper : lower;
  } else if (i == 1) {
    rate = std::isfinite(upper) ? (lower + upper) / 2.0 : 2.0 * lower;
  } else {
    if (variant == Variant::kMovingAverage) {
      rate = sum / (static_cast<double>(pattern_length) * tau);
    }
    if (rate > upper) {
      rate = upper;
    } else if (rate < lower) {
      rate = lower;
    }
  }

  // Realizability fallback: never emit an infinite or non-positive rate.
  // Only reachable outside the Theorem 1 regime (see engine.h).
  if (!std::isfinite(rate) || rate <= 0.0) {
    rate = std::isfinite(lower) && lower > 0.0   ? lower
           : std::isfinite(upper) && upper > 0.0 ? upper
                                                 : fallback_bits / tau;
  }

  // Discrete-rate channel: snap to the nearest quantum multiple that stays
  // inside [lower, upper]; keep the exact rate when no multiple fits.
  if (params.rate_quantum > 0.0 && std::isfinite(rate)) {
    const double quantum = params.rate_quantum;
    double snapped = std::round(rate / quantum) * quantum;
    if (snapped < lower) snapped += quantum;
    if (snapped > upper && std::isfinite(upper)) snapped -= quantum;
    if (snapped >= lower && (!std::isfinite(upper) || snapped <= upper) &&
        snapped > 0.0) {
      rate = snapped;
    }
  }

  RateDecision decision;
  decision.rate = rate;
  decision.diag.lookahead_used = h;
  decision.diag.early_exit = early_exit;
  decision.diag.lower = lower;
  decision.diag.upper = upper;
  decision.diag.rate_changed =
      i == 1 || std::abs(rate - previous_rate) >
                    1e-9 * std::max(std::abs(rate), 1.0);
  return decision;
}

/// The paper's sequential loop: one running intersection, abort on the
/// first crossing. Used when the lookahead depth exceeds
/// kMaxTrackedLookahead; select_rate_sums below is the common-case shape.
template <typename WindowSumFn>
RateDecision select_rate_sums_sequential(int i, Seconds t_i, int last_picture,
                                         Rate previous_rate,
                                         const SmootherParams& params,
                                         int pattern_length, Variant variant,
                                         double fallback_bits,
                                         WindowSumFn&& window_sum) {
  int h = 0;
  // i-1+h and K+i+h as doubles, advanced by +1.0 per iteration; both are
  // integers far below 2^53, so this matches the int conversion bit for
  // bit while keeping the conversions out of the loop.
  double pictures = static_cast<double>(i - 1);
  double deadline_index = static_cast<double>(params.K + i);
  double sum = 0.0;
  Rate lower = 0.0;
  Rate upper = kUnbounded;
  Rate lower_old = 0.0;
  bool early_exit = false;
  while (true) {
    if (i + h > last_picture) break;  // sequence end: nothing further
    sum = window_sum(h);
    lower_old = lower;
    const Rate lo = lookahead_lower_bound_at(sum, pictures, t_i, params);
    const Rate up = lookahead_upper_bound_at(sum, deadline_index, t_i, params);
    lower = std::max(lo, lower_old);
    upper = std::min(up, upper);
    ++h;
    pictures += 1.0;
    deadline_index += 1.0;
    if (lower > upper) {
      early_exit = true;
      break;
    }
    if (h >= params.H) break;
  }
  return finish_decision(i, h, sum, early_exit, lower, upper, lower_old,
                         previous_rate, params, pattern_length, variant,
                         fallback_bits);
}

/// Selects r_i for picture i deciding at time `t_i`.
///  - `last_picture` bounds the lookahead (i + h <= last_picture); pass a
///    huge value for an unbounded (streaming, pre-finish) sequence.
///  - `window_sum(h)` is S_i + ... + S_{i+h} (estimates allowed for unarrived
///    pictures), called with h = 0, 1, 2, ... strictly increasing.
///  - `previous_rate` is r_{i-1} (ignored for i == 1).
///  - `fallback_bits` is the value used to realize a rate if every bound is
///    ill-defined (only reachable outside the Theorem 1 regime).
///
/// Loop shape: crossings (Section 4.4 aborts) are rare, so every bound is
/// evaluated unconditionally and a crossing is detected with one compare at
/// the end: the running intersection crosses at some step iff
/// max(all lower) > min(all upper), since the running max (min) sits below
/// (above) the global one at every step. Only on a crossing is the running
/// intersection replayed over the recorded window sums to find the crossing
/// step and the standing interval before it. Identical decisions and
/// diagnostics to the sequential loop, in every case.
///
/// The window sums are recorded first (window_sum is stateful and must see
/// h strictly increasing), then both global bounds come from the
/// runtime-dispatched fold_bounds() (bounds_fold.h): every tier folds the
/// same rounded quotient per step the sequential loop computes — max/min
/// are associative over these values (never NaN, never -0.0), so any fold
/// order is bit-identical to the sequential chain; the wide tiers just
/// retire 2 (AVX2) or 4 (AVX-512) steps per vector division. Every tier
/// is pinned bitwise against kReference and against every other tier by
/// tests/core/simd_dispatch_identity_test.cpp.
template <typename FillFn, typename WindowSumFn>
RateDecision select_rate_sums_filled(int i, Seconds t_i, int last_picture,
                                     Rate previous_rate,
                                     const SmootherParams& params,
                                     int pattern_length, Variant variant,
                                     double fallback_bits, FillFn&& fill,
                                     WindowSumFn&& window_sum) {
  const int remaining = last_picture - i + 1;
  const int h_lim = remaining < params.H ? remaining : params.H;
  if (h_lim <= 0 || h_lim > kMaxTrackedLookahead) {
    return select_rate_sums_sequential(i, t_i, last_picture, previous_rate,
                                       params, pattern_length, variant,
                                       fallback_bits, window_sum);
  }
  double sums[kMaxTrackedLookahead];
  fill(sums, h_lim);
  const double sum = sums[h_lim - 1];
  int h = h_lim;
  const BoundsFoldResult fold = fold_bounds(sums, h_lim, i, t_i, params);
  Rate lower = fold.lower;
  Rate upper = fold.upper;
  Rate lower_old = 0.0;
  bool early_exit = false;
  if (__builtin_expect(lower > upper, 0)) {
    // Rare: replay the running intersection to locate the crossing step and
    // the standing interval just before it (Section 4.4 needs both).
    Rate run_lower = 0.0;
    Rate run_upper = kUnbounded;
    for (int m = 0; m < h_lim; ++m) {
      lower_old = run_lower;
      run_lower = std::max(lookahead_lower_bound(sums[m], i, m, t_i, params),
                           run_lower);
      run_upper = std::min(lookahead_upper_bound(sums[m], i, m, t_i, params),
                           run_upper);
      if (run_lower > run_upper) {
        lower = run_lower;
        upper = run_upper;
        h = m + 1;
        early_exit = true;
        break;
      }
    }
  }
  return finish_decision(i, h, sum, early_exit, lower, upper, lower_old,
                         previous_rate, params, pattern_length, variant,
                         fallback_bits);
}

/// Generic shape: the tracked sums array is filled by calling window_sum(m)
/// once per step. select_rate_kernel below supplies a flat bulk fill
/// instead; the values (and hence the decision) are identical either way.
template <typename WindowSumFn>
RateDecision select_rate_sums(int i, Seconds t_i, int last_picture,
                              Rate previous_rate, const SmootherParams& params,
                              int pattern_length, Variant variant,
                              double fallback_bits, WindowSumFn&& window_sum) {
  return select_rate_sums_filled(
      i, t_i, last_picture, previous_rate, params, pattern_length, variant,
      fallback_bits,
      [&](double* sums, int count) {
        for (int m = 0; m < count; ++m) {
          sums[m] = window_sum(m);
        }
      },
      window_sum);
}

/// Reference path: `size_at(j, t)` is the paper's size function (actual or
/// estimated), typically a virtual SizeEstimator::size_at round trip.
template <typename SizeFn>
RateDecision select_rate(int i, Seconds t_i, int last_picture,
                         Rate previous_rate, const SmootherParams& params,
                         int pattern_length, Variant variant,
                         double fallback_bits, SizeFn&& size_at) {
  double running = 0.0;
  return select_rate_sums(
      i, t_i, last_picture, previous_rate, params, pattern_length, variant,
      fallback_bits, [&](int h) {
        running += static_cast<double>(size_at(i + h, t_i));
        return running;
      });
}

/// Fast path: `kernel` is one of the sealed estimator kernels of fastpath.h
/// (statically dispatched — no virtual calls anywhere in the loop). The
/// kernel advances its arrival frontier once for the step, serves the
/// arrived part of every window sum as a prefix-sum difference, and
/// accumulates the estimated tail with O(1) per-picture estimates.
///
/// The tracked-depth shape fills the sums array with two flat loops —
/// the arrived prefix diffs, then the estimated tail — instead of a
/// branch per step; the per-window values are the exact same integers
/// (converted once to double each), so the decision is bit-identical to
/// the per-step lambda the sequential fallback still uses.
template <typename Kernel>
RateDecision select_rate_kernel(int i, Seconds t_i, int last_picture,
                                Rate previous_rate,
                                const SmootherParams& params,
                                int pattern_length, Variant variant,
                                double fallback_bits, Kernel& kernel) {
  kernel.begin_step(t_i);
  const int arrived = kernel.arrived();
  const Bits head = kernel.arrived_head(i);  // per-step invariant, hoisted
  Bits estimated = 0;
  return select_rate_sums_filled(
      i, t_i, last_picture, previous_rate, params, pattern_length, variant,
      fallback_bits,
      [&, i, arrived, head](double* sums, int count) {
        const int arrived_count = arrived - i + 1;
        const int split = arrived_count < count ? arrived_count : count;
        int m = 0;
        for (; m < split; ++m) {
          sums[m] = static_cast<double>(kernel.arrived_window(i, i + m));
        }
        Bits tail = 0;
        for (; m < count; ++m) {
          tail += kernel.estimate(i + m);
          sums[m] = static_cast<double>(head + tail);
        }
      },
      [&, i, arrived, head](int h) {
        const int j = i + h;
        if (j <= arrived) {
          // Whole window arrived: one prefix-sum difference, exact.
          return static_cast<double>(kernel.arrived_window(i, j));
        }
        estimated += kernel.estimate(j);
        return static_cast<double>(head + estimated);
      });
}

}  // namespace lsm::core::detail
