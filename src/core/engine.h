// The smoothing algorithm itself (paper, Figure 2), as an incremental,
// causal engine: one step() per picture, in picture order.
//
// The engine follows the published pseudocode exactly, with two documented
// boundary refinements:
//
//   * Sequence end. The paper's procedure loops "until seq_end". Near the
//     end of a finite sequence the lookahead window and the K-picture wait
//     are truncated to existing pictures: t_i = max(d_{i-1},
//     min(i-1+K, n) tau) — the server does not wait for pictures that will
//     never arrive — and the inner loop stops at h with i + h > n.
//
//   * Ill-defined bounds. If a lower bound's denominator is <= 0 (possible
//     only when the parameters violate Eq. 1, e.g. the paper's K = 0
//     violation experiments), the bound is +infinity, which drives the
//     early-exit branch; if that branch would select an infinite rate the
//     engine falls back to the largest finite bound so the returned schedule
//     is always realizable (the delay bound may then be violated, which the
//     TheoremChecker reports — exactly the behavior the paper observed for
//     K = 0 with small slack).
//
// Variant::kMovingAverage is the paper's Eq. 15 modification: on normal
// exit the proposed rate is sum/(N tau) (the lookahead moving average)
// instead of "keep the previous rate"; it is then clamped to
// [lower, upper] like the basic algorithm.
#pragma once

#include <vector>

#include "core/estimator.h"
#include "core/fastpath.h"
#include "core/params.h"
#include "core/schedule.h"
#include "obs/tracer.h"

namespace lsm::core {

/// Which rate-selection rule runs on normal exit (see file comment).
enum class Variant { kBasic, kMovingAverage };

/// Per-step diagnostics, exposed for tests and the H-conjecture study.
struct StepDiagnostics {
  int lookahead_used = 0;  ///< number of pictures summed (h at loop exit)
  bool early_exit = false; ///< inner loop ended with lower > upper
  Rate lower = 0.0;        ///< final (clamped) lower bound
  Rate upper = 0.0;        ///< final (clamped) upper bound
  bool rate_changed = false;  ///< r_i differs from r_{i-1}
};

/// Incremental smoother. The referenced trace and estimator must outlive the
/// engine. Pictures are processed strictly in order 1..n.
///
/// By default (ExecutionPath::kAuto) the engine runs the devirtualized fast
/// path of fastpath.h whenever the estimator is one of the library's
/// concrete kinds bound to `trace`; its output is bitwise identical to the
/// virtual reference path, which ExecutionPath::kReference forces (the
/// differential-testing flag).
class SmootherEngine {
 public:
  /// Throws InvalidParams on structurally invalid parameters.
  SmootherEngine(const lsm::trace::Trace& trace, const SmootherParams& params,
                 const SizeEstimator& estimator,
                 Variant variant = Variant::kBasic,
                 ExecutionPath path = ExecutionPath::kAuto);

  /// True when every picture has been scheduled.
  bool done() const noexcept;

  /// 1-based index of the picture the next step() will schedule.
  int next_picture() const noexcept { return next_; }

  /// Schedules the next picture: computes t_i, selects r_i per Figure 2,
  /// and returns the send record. Requires !done().
  PictureSend step();

  /// Diagnostics of the most recent step(). Meaningful after one step.
  const StepDiagnostics& last_diagnostics() const noexcept { return diag_; }

  /// Runs all remaining steps and returns their send records.
  std::vector<PictureSend> run();

  /// Runs all remaining steps, appending one PictureSend and one
  /// StepDiagnostics per picture. Equivalent to repeated step() +
  /// last_diagnostics(), but resolves the execution path once for the whole
  /// run instead of once per picture — the batch hot path (smooth_into).
  void run_into(std::vector<PictureSend>& sends,
                std::vector<StepDiagnostics>& diags);

  /// True when steps run on a sealed fast-path kernel (kAuto resolved to a
  /// known estimator kind), false on the virtual reference path.
  bool using_fast_path() const noexcept {
    return !std::holds_alternative<std::monostate>(kernel_);
  }

 private:
  /// One Figure 2 step against a statically-typed kernel (monostate = the
  /// virtual reference path). Shared by step() and run_into() so the two
  /// entry points cannot diverge.
  template <typename Kernel>
  PictureSend step_on(Kernel& kernel);

  const lsm::trace::Trace& trace_;
  SmootherParams params_;
  const SizeEstimator& estimator_;
  Variant variant_;
  fastpath::AnyKernel kernel_;
  /// Observability hook: binds the global Tracer and the ambient stream id
  /// (obs::current_stream()) at construction. Emission is the taxonomy of
  /// DESIGN.md §3.5 — bound crossing, rate change, picture scheduled — and
  /// every emitted field is a deterministic function of the schedule, so
  /// traces are byte-identical across execution paths (tracing observes,
  /// never branches the schedule). Disabled cost: one relaxed load/step.
  obs::StreamTracer tracer_;

  int next_ = 1;        ///< picture index i of the next step
  Seconds depart_ = 0.0;  ///< d_{i-1}
  Rate rate_ = 0.0;     ///< r_{i-1}, carried across steps per Figure 2
  StepDiagnostics diag_{};
};

}  // namespace lsm::core
