#include "core/series_ops.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "core/simd_dispatch.h"

namespace lsm::core::detail {

void add_series_scalar(double* dst, const double* src,
                       std::size_t n) noexcept {
  for (std::size_t k = 0; k < n; ++k) dst[k] += src[k];
}

#if defined(__SSE2__)
void add_series_sse2(double* dst, const double* src, std::size_t n) noexcept {
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    _mm_storeu_pd(dst + k, _mm_add_pd(_mm_loadu_pd(dst + k),
                                      _mm_loadu_pd(src + k)));
  }
  for (; k < n; ++k) dst[k] += src[k];
}
#else
void add_series_sse2(double* dst, const double* src, std::size_t n) noexcept {
  add_series_scalar(dst, src, n);
}
#endif

void add_series(double* dst, const double* src, std::size_t n) noexcept {
  switch (simd::active_simd_level()) {
    case simd::SimdLevel::kScalar:
      return add_series_scalar(dst, src, n);
    case simd::SimdLevel::kSse2:
      return add_series_sse2(dst, src, n);
    case simd::SimdLevel::kAvx2:
    case simd::SimdLevel::kAvx512:  // no 512-bit tier: add is load-bound
#if defined(LSM_CORE_HAVE_AVX2)
      return add_series_avx2(dst, src, n);
#else
      return add_series_sse2(dst, src, n);
#endif
  }
  return add_series_scalar(dst, src, n);
}

}  // namespace lsm::core::detail
