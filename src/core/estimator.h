// Picture-size estimators: the size(j, t) function of the algorithm
// specification (paper, Section 4.4).
//
// At time t, the size of picture j is *known* iff picture j has completely
// arrived, i.e. t >= j tau (the paper's pseudocode writes t > j tau; we use
// >= because in the system model picture j's arrival completes exactly at
// j tau, and Theorem 1 needs S_i known at t_i = (i-1+K) tau = i tau when
// K = 1 and the server is not behind). Sizes of pictures that have not
// arrived are estimated.
//
// The paper's estimator exploits the repeating pattern: S_j is estimated by
// S_{j-N}, the most recent same-type picture one full pattern back; for the
// initial part of the sequence fixed per-type defaults are used (I: 200,000;
// P: 100,000; B: 20,000 bits). Theorem 1 holds regardless of estimate
// quality, so alternative estimators are provided for ablation studies.
#pragma once

#include <memory>
#include <string>

#include "core/params.h"
#include "trace/pattern.h"

namespace lsm::core {

/// Fixed per-type fallback sizes (paper, Section 4.4).
struct DefaultSizes {
  Bits i_bits = 200000;
  Bits p_bits = 100000;
  Bits b_bits = 20000;

  Bits of(lsm::trace::PictureType type) const noexcept;
};

/// Identity of a concrete estimator for the compile-time-dispatched fast
/// path (core/fastpath.h). kOther keeps engines on the virtual reference
/// path, so user-defined estimators keep working unchanged.
enum class EstimatorKind : std::uint8_t {
  kOther,
  kPattern,
  kOracle,
  kLastSameType,
  kPhaseEwma,
  kTypeMean,
};

/// What an engine needs to replace a concrete estimator with its sealed
/// kernel. `trace` identifies the trace the estimator is bound to; the
/// engine only trusts the kernel when it matches the trace being smoothed.
struct FastPathInfo {
  EstimatorKind kind = EstimatorKind::kOther;
  const lsm::trace::Trace* trace = nullptr;
  DefaultSizes defaults{};
};

/// Interface for size(j, t). Implementations are bound to one trace.
class SizeEstimator {
 public:
  virtual ~SizeEstimator() = default;

  /// Returns the actual size of picture j if it has arrived by time t,
  /// otherwise an estimate. Requires 1 <= j <= picture count of the trace.
  virtual Bits size_at(int j, Seconds t) const = 0;

  /// Human-readable estimator name for bench/report output.
  virtual std::string name() const = 0;

  /// Fast-path identity; the default (kOther) opts out, keeping any
  /// subclass on the reference path. Overriding with a concrete kind is a
  /// promise that the estimator *is* that library type (the fast-path
  /// factory downcasts accordingly).
  virtual FastPathInfo fastpath_info() const { return {}; }

 protected:
  /// True iff picture j has completely arrived at time t.
  static bool arrived(int j, Seconds t, Seconds tau) noexcept {
    return t >= static_cast<double>(j) * tau - 1e-12;
  }
};

/// The paper's estimator: actual size if arrived; else S_{j-N} (applied
/// repeatedly if j-N has itself not arrived, which only happens when the
/// lookahead H exceeds N); else the per-type default.
class PatternEstimator final : public SizeEstimator {
 public:
  explicit PatternEstimator(const lsm::trace::Trace& trace,
                            DefaultSizes defaults = {});
  Bits size_at(int j, Seconds t) const override;
  std::string name() const override { return "pattern"; }
  FastPathInfo fastpath_info() const override {
    return {EstimatorKind::kPattern, &trace_, defaults_};
  }

 private:
  const lsm::trace::Trace& trace_;
  DefaultSizes defaults_;
};

/// Oracle: all sizes known a priori (the Ott et al. assumption). Upper
/// bound on what any estimator can achieve.
class OracleEstimator final : public SizeEstimator {
 public:
  explicit OracleEstimator(const lsm::trace::Trace& trace) : trace_(trace) {}
  Bits size_at(int j, Seconds t) const override;
  std::string name() const override { return "oracle"; }
  FastPathInfo fastpath_info() const override {
    return {EstimatorKind::kOracle, &trace_, DefaultSizes{}};
  }

 private:
  const lsm::trace::Trace& trace_;
};

/// Most recent *arrived* picture of the same type (distance may be < N for
/// B pictures); falls back to per-type defaults.
class LastSameTypeEstimator final : public SizeEstimator {
 public:
  explicit LastSameTypeEstimator(const lsm::trace::Trace& trace,
                                 DefaultSizes defaults = {});
  Bits size_at(int j, Seconds t) const override;
  std::string name() const override { return "last-same-type"; }
  FastPathInfo fastpath_info() const override {
    return {EstimatorKind::kLastSameType, &trace_, defaults_};
  }

 private:
  const lsm::trace::Trace& trace_;
  DefaultSizes defaults_;
};

/// Exponentially weighted moving average over the arrived pictures at the
/// same pattern PHASE as j (not merely the same type): a natural refinement
/// of the paper's S_{j-N} that averages out per-picture noise while still
/// tracking scene changes with weight alpha per step. alpha = 1 reduces to
/// the paper's estimator.
class PhaseEwmaEstimator final : public SizeEstimator {
 public:
  /// Per phase: the picture indices at that phase (ascending) and the EWMA
  /// value after each of them, so a query is a binary search (reference
  /// path) or a monotone cursor advance (fast-path kernel).
  struct PhaseHistory {
    std::vector<int> indices;
    std::vector<double> ewma_after;
  };

  /// Requires 0 < alpha <= 1.
  explicit PhaseEwmaEstimator(const lsm::trace::Trace& trace,
                              double alpha = 0.5, DefaultSizes defaults = {});
  Bits size_at(int j, Seconds t) const override;
  std::string name() const override { return "phase-ewma"; }
  FastPathInfo fastpath_info() const override {
    return {EstimatorKind::kPhaseEwma, &trace_, defaults_};
  }

  /// Precomputed histories, shared with the fast-path kernel so it never
  /// re-derives (or risks diverging from) the EWMA arithmetic.
  const std::vector<PhaseHistory>& by_phase() const noexcept {
    return by_phase_;
  }

 private:
  const lsm::trace::Trace& trace_;
  double alpha_;
  DefaultSizes defaults_;
  std::vector<PhaseHistory> by_phase_;
};

/// Mean of all arrived pictures of the same type; adapts slowly and washes
/// out scene changes — included to show why recency matters.
class TypeMeanEstimator final : public SizeEstimator {
 public:
  explicit TypeMeanEstimator(const lsm::trace::Trace& trace,
                             DefaultSizes defaults = {});
  Bits size_at(int j, Seconds t) const override;
  std::string name() const override { return "type-mean"; }
  FastPathInfo fastpath_info() const override {
    return {EstimatorKind::kTypeMean, &trace_, defaults_};
  }

  /// Precomputed per-type prefix tables, shared with the fast-path kernel
  /// (same doubles, so the kernel's means are bitwise identical).
  const std::vector<std::vector<double>>& prefix_sums() const noexcept {
    return prefix_sums_;
  }
  const std::vector<std::vector<int>>& prefix_counts() const noexcept {
    return prefix_counts_;
  }

 private:
  const lsm::trace::Trace& trace_;
  DefaultSizes defaults_;
  // Prefix sums and counts per type, by picture index, precomputed so that
  // queries are O(1): sums_[t][k] = total bits of type-t pictures among 1..k.
  std::vector<std::vector<double>> prefix_sums_;
  std::vector<std::vector<int>> prefix_counts_;
};

}  // namespace lsm::core
