// Devirtualized fast path for the Figure 2 inner loop.
//
// The rate-selection loop makes up to H size(j, t_i) queries per picture.
// Through the virtual SizeEstimator interface each query re-derives the
// arrival frontier floor(t/tau), re-checks index bounds, and (for the
// pattern and last-same-type estimators) walks backwards through the trace
// — O(n·H) virtual dispatch with per-call redundant work. This header
// replaces that with one sealed kernel per concrete estimator:
//
//   * no virtual dispatch: engines hold a std::variant of kernel types and
//     instantiate the loop per kernel (core/rate_select.h,
//     select_rate_kernel), so every size lookup inlines;
//   * per-step invariant hoisting: the arrival frontier — the largest k
//     with t >= k*tau - eps, i.e. exactly the set the virtual estimators'
//     arrived() predicate accepts — is advanced incrementally once per step
//     (t_i is monotone across steps), never re-derived per query;
//   * prefix-sum lookahead: a resolved-size prefix array over the arrived
//     pictures makes the arrived part of every lookahead window sum one
//     subtraction; the estimated tail is accumulated with O(1) per-picture
//     estimates (closed-form chain arithmetic for the pattern walk-back,
//     precomputed last-index tables for last-same-type, monotone cursors
//     for phase-EWMA);
//   * exactness: picture sizes are integral Bits, so every partial window
//     sum is an integer far below 2^53 and the prefix-sum differences equal
//     the reference path's sequential double accumulation bit for bit. The
//     emitted schedules are bitwise identical to the virtual path
//     (tests/core/fastpath_identity_test.cpp).
//
// The public virtual SizeEstimator API is unchanged; unknown estimator
// subclasses (FastPathInfo kind == kOther) and engines constructed with
// ExecutionPath::kReference run the original virtual loop, which is
// retained as the differential-testing reference.
#pragma once

#include <cmath>
#include <variant>
#include <vector>

#include "core/estimator.h"
#include "core/params.h"

namespace lsm::core {

/// Which implementation of the Figure 2 inner loop an engine runs.
enum class ExecutionPath {
  kAuto,       ///< sealed kernel when the estimator is a known kind,
               ///< virtual reference loop otherwise
  kReference,  ///< always the virtual-dispatch reference loop
};

namespace fastpath {

using lsm::trace::Trace;

/// State shared by every trace-backed kernel: the resolved-size prefix-sum
/// array and the per-step arrival frontiers.
class KernelBase {
 public:
  KernelBase(const Trace& trace, DefaultSizes defaults);

  /// Hoists the per-step invariant for decision time `t`: advances the
  /// arrival frontier (largest k with t >= k*tau - eps, the exact arrived()
  /// predicate of the virtual estimators). Decision times are monotone
  /// across steps (t_i = max(d_{i-1}, ...) and d is increasing), so the
  /// advance is amortized O(1). Kernels whose estimates also need the
  /// floor(t/tau) frontier of the scan-back estimators shadow this with a
  /// version that calls advance_latest() too — static dispatch in
  /// select_rate_kernel picks the shadow, and the others skip the floor().
  void begin_step(Seconds t) noexcept {
    // next_threshold_ caches (arrived_+1)*tau - eps so the common no-advance
    // case is one compare; it is rebuilt from the same expression on every
    // advance, so the cached double equals evaluating it inline.
    while (arrived_ < picture_count_ && t >= next_threshold_) {
      ++arrived_;
      next_threshold_ = static_cast<double>(arrived_ + 1) * tau_ - 1e-12;
    }
  }

  /// Arrival frontier after begin_step: picture j has arrived iff
  /// j <= arrived().
  int arrived() const noexcept { return arrived_; }

  /// Sum S_i + ... + S_j for a fully-arrived window (j <= arrived()).
  Bits arrived_window(int i, int j) const noexcept {
    return prefix_[static_cast<std::size_t>(j)] -
           prefix_[static_cast<std::size_t>(i - 1)];
  }

  /// Sum of the arrived prefix of a window starting at i (empty when the
  /// whole window is estimated).
  Bits arrived_head(int i) const noexcept {
    return arrived_ >= i ? arrived_window(i, arrived_) : 0;
  }

 protected:
  /// Advances the floor(t/tau) frontier the scan-back estimators use; note
  /// its epsilon differs from the arrival frontier's, so the two cannot be
  /// merged without breaking bitwise identity.
  void advance_latest(Seconds t) noexcept {
    latest_ = static_cast<int>(std::floor(t / tau_ + 1e-9));
    if (latest_ > picture_count_) latest_ = picture_count_;
  }

  Bits size_of(int j) const noexcept {
    return sizes_[static_cast<std::size_t>(j - 1)];
  }

  const Trace* trace_;
  const Bits* sizes_;  ///< trace sizes, 0-based
  DefaultSizes defaults_;
  double tau_;
  int picture_count_;
  int arrived_ = 0;  ///< largest k with t >= k*tau - 1e-12, in [0, n]
  int latest_ = 0;   ///< min(floor(t/tau + 1e-9), n)
  double next_threshold_;  ///< (arrived_+1)*tau - 1e-12

 private:
  std::vector<Bits> prefix_;  ///< prefix_[k] = S_1 + ... + S_k
};

/// PatternEstimator kernel: the S_{j-N} walk-back collapses to closed-form
/// chain arithmetic against the arrival frontier.
class PatternKernel : public KernelBase {
 public:
  PatternKernel(const Trace& trace, DefaultSizes defaults);

  /// Estimate for an unarrived picture (j > arrived()): the newest arrived
  /// picture one or more whole patterns back, else the per-type default.
  /// The walk runs at most ceil(H/N) iterations and beats an integer
  /// division at the small lookahead depths the paper recommends (H <= 2N).
  Bits estimate(int j) noexcept {
    int k = j - pattern_n_;
    while (k > arrived_) k -= pattern_n_;
    if (k >= 1) return size_of(k);
    return defaults_.of(trace_->type_of(j));
  }

 private:
  int pattern_n_;
};

/// OracleEstimator kernel: every size is known a priori.
class OracleKernel : public KernelBase {
 public:
  explicit OracleKernel(const Trace& trace);

  Bits estimate(int j) noexcept { return size_of(j); }
};

/// LastSameTypeEstimator kernel: the O(n) scan back from floor(t/tau) for a
/// matching type becomes an O(1) lookup in precomputed last-same-type index
/// tables.
class LastSameTypeKernel : public KernelBase {
 public:
  LastSameTypeKernel(const Trace& trace, DefaultSizes defaults);

  void begin_step(Seconds t) noexcept {
    KernelBase::begin_step(t);
    advance_latest(t);
  }

  Bits estimate(int j) noexcept {
    const lsm::trace::PictureType type = trace_->type_of(j);
    const int k = last_of_type_[static_cast<std::size_t>(type)]
                               [static_cast<std::size_t>(latest_)];
    if (k >= 1) return size_of(k);
    return defaults_.of(type);
  }

 private:
  /// last_of_type_[type][k]: largest index <= k with that type, else 0.
  std::vector<int> last_of_type_[3];
};

/// PhaseEwmaEstimator kernel: borrows the estimator's precomputed per-phase
/// EWMA histories (same doubles, hence bitwise-identical estimates) and
/// replaces the per-query binary search with per-phase cursors that only
/// ever advance, since the frontier is monotone.
class PhaseEwmaKernel : public KernelBase {
 public:
  PhaseEwmaKernel(const Trace& trace, const PhaseEwmaEstimator& estimator,
                  DefaultSizes defaults);

  void begin_step(Seconds t) noexcept {
    KernelBase::begin_step(t);
    advance_latest(t);
  }

  Bits estimate(int j) noexcept {
    const std::size_t phase =
        static_cast<std::size_t>(trace_->pattern().phase_of(j));
    const PhaseEwmaEstimator::PhaseHistory& history = (*by_phase_)[phase];
    std::size_t& cursor = cursors_[phase];
    while (cursor < history.indices.size() &&
           history.indices[cursor] <= latest_) {
      ++cursor;
    }
    if (cursor == 0) return defaults_.of(trace_->type_of(j));
    return static_cast<Bits>(std::llround(history.ewma_after[cursor - 1]));
  }

 private:
  const std::vector<PhaseEwmaEstimator::PhaseHistory>* by_phase_;
  std::vector<std::size_t> cursors_;  ///< indices consumed per phase
};

/// TypeMeanEstimator kernel: borrows the estimator's per-type prefix tables
/// (queries were already O(1); the win is dropping the virtual round trip
/// and the per-call frontier/bounds work).
class TypeMeanKernel : public KernelBase {
 public:
  TypeMeanKernel(const Trace& trace, const TypeMeanEstimator& estimator,
                 DefaultSizes defaults);

  void begin_step(Seconds t) noexcept {
    KernelBase::begin_step(t);
    advance_latest(t);
  }

  Bits estimate(int j) noexcept {
    const std::size_t type =
        static_cast<std::size_t>(trace_->type_of(j));
    const std::size_t latest = static_cast<std::size_t>(latest_);
    const int count = (*prefix_counts_)[type][latest];
    if (count == 0) return defaults_.of(trace_->type_of(j));
    const double mean = (*prefix_sums_)[type][latest] / count;
    return static_cast<Bits>(std::llround(mean));
  }

 private:
  const std::vector<std::vector<double>>* prefix_sums_;
  const std::vector<std::vector<int>>* prefix_counts_;
};

/// StreamingSmoother kernel: same shape as PatternKernel, but over the
/// growing pushed-size buffer — the prefix-sum array is extended
/// incrementally on every push, and the frontier is additionally capped by
/// how many pictures have been pushed.
///
/// The buffers are windowed: trim_to() drops pictures older than the
/// caller's retention bound (logical index base_ maps to vector slot 0).
/// Retained prefix entries keep their ABSOLUTE values — a window sum after
/// a trim subtracts exactly the same integers as before it — so trimming
/// cannot perturb a single emitted bit.
class StreamingKernel {
 public:
  StreamingKernel(lsm::trace::GopPattern pattern, double tau,
                  DefaultSizes defaults);

  /// Rebinds the kernel to a fresh stream without releasing buffer
  /// capacity — the slab-arena reuse path (net/statmux): a recycled slot's
  /// kernel starts the new stream with the old stream's high-water
  /// vectors, so steady-state admit/depart churn allocates nothing.
  void reset(lsm::trace::GopPattern pattern, double tau,
             DefaultSizes defaults) {
    pattern_ = pattern;
    defaults_ = defaults;
    tau_ = tau;
    sizes_.clear();
    prefix_.clear();
    prefix_.push_back(0);
    pushed_ = 0;
    base_ = 1;
    arrived_ = 0;
    next_threshold_ = tau - 1e-12;
  }

  /// Picture (pushed+1) finished encoding; extends the prefix-sum array.
  void on_push(Bits size) {
    sizes_.push_back(size);
    prefix_.push_back(prefix_.back() + size);
    ++pushed_;
  }

  /// Drops pictures below logical index `keep_from` (amortized by the
  /// caller; requires base_ <= keep_from <= arrived frontier).
  void trim_to(int keep_from) {
    const auto dead = static_cast<std::ptrdiff_t>(keep_from - base_);
    if (dead <= 0) return;
    sizes_.erase(sizes_.begin(), sizes_.begin() + dead);
    prefix_.erase(prefix_.begin(), prefix_.begin() + dead);
    base_ = keep_from;
  }

  void begin_step(Seconds t) noexcept {
    // Same cached-threshold advance as KernelBase::begin_step, additionally
    // capped by how many pictures have been pushed.
    while (arrived_ < pushed_ && t >= next_threshold_) {
      ++arrived_;
      next_threshold_ = static_cast<double>(arrived_ + 1) * tau_ - 1e-12;
    }
  }

  /// Frontier of pictures that are both pushed and arrived.
  int arrived() const noexcept { return arrived_; }

  Bits arrived_window(int i, int j) const noexcept {
    return prefix_[static_cast<std::size_t>(j - base_ + 1)] -
           prefix_[static_cast<std::size_t>(i - base_)];
  }

  Bits arrived_head(int i) const noexcept {
    return arrived_ >= i ? arrived_window(i, arrived_) : 0;
  }

  Bits estimate(int j) noexcept {
    const int n = pattern_.N();
    int k = j - n;
    while (k > arrived_) k -= n;
    if (k >= 1) return sizes_[static_cast<std::size_t>(k - base_)];
    return defaults_.of(pattern_.type_of(j));
  }

 private:
  lsm::trace::GopPattern pattern_;
  DefaultSizes defaults_;
  double tau_;
  std::vector<Bits> sizes_;   ///< sizes_[k] = S_{base_ + k}
  std::vector<Bits> prefix_;  ///< prefix_[k] = S_1 + ... + S_{base_ - 1 + k}
  int pushed_ = 0;            ///< total pushed (logical, survives trims)
  int base_ = 1;              ///< logical index of sizes_[0]
  int arrived_ = 0;
  double next_threshold_;  ///< (arrived_+1)*tau - 1e-12
};

/// One of the sealed trace-backed kernels, or monostate for the reference
/// (virtual) path.
using AnyKernel = std::variant<std::monostate, PatternKernel, OracleKernel,
                               LastSameTypeKernel, PhaseEwmaKernel,
                               TypeMeanKernel>;

/// Builds the sealed kernel for `estimator` when it is a known concrete
/// kind bound to `trace`; returns monostate (reference path) when `path` is
/// kReference, the estimator kind is kOther, or the estimator is bound to a
/// different trace.
AnyKernel make_kernel(const Trace& trace, const SizeEstimator& estimator,
                      ExecutionPath path);

}  // namespace fastpath
}  // namespace lsm::core
