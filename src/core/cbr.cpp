#include "core/cbr.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace lsm::core {

namespace {

std::vector<double> cumulative(const lsm::trace::Trace& trace) {
  std::vector<double> cum(static_cast<std::size_t>(trace.picture_count()) + 1,
                          0.0);
  for (int i = 1; i <= trace.picture_count(); ++i) {
    cum[static_cast<std::size_t>(i)] =
        cum[static_cast<std::size_t>(i - 1)] +
        static_cast<double>(trace.size_of(i));
  }
  return cum;
}

}  // namespace

Seconds min_startup_delay(const lsm::trace::Trace& trace, Rate rate) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("min_startup_delay: rate must be > 0");
  }
  const std::vector<double> cum = cumulative(trace);
  const double tau = trace.tau();
  // delivery_i = cum_i / R + max_{j<=i} (j tau - cum_{j-1} / R): keep the
  // inner max as a running quantity for O(n).
  double inner_max = -1e300;
  Seconds worst = 0.0;
  for (int i = 1; i <= trace.picture_count(); ++i) {
    inner_max = std::max(inner_max,
                         static_cast<double>(i) * tau -
                             cum[static_cast<std::size_t>(i - 1)] / rate);
    const Seconds delivery =
        cum[static_cast<std::size_t>(i)] / rate + inner_max;
    worst = std::max(worst, delivery - static_cast<double>(i - 1) * tau);
  }
  return worst;
}

Rate min_cbr_rate(const lsm::trace::Trace& trace, Seconds startup_delay) {
  const double tau = trace.tau();
  if (!(startup_delay > tau)) {
    throw std::invalid_argument(
        "min_cbr_rate: startup delay must exceed one picture period");
  }
  const std::vector<double> cum = cumulative(trace);
  // Feasibility for every window j..i: the bits of pictures j..i cannot
  // start before picture j's arrival at j tau and must finish by picture
  // i's playout at (i-1) tau + startup_delay:
  //   (cum_i - cum_{j-1}) / R <= startup_delay + (i - j) tau - tau.
  Rate needed = 0.0;
  for (int j = 1; j <= trace.picture_count(); ++j) {
    for (int i = j; i <= trace.picture_count(); ++i) {
      const double bits = cum[static_cast<std::size_t>(i)] -
                          cum[static_cast<std::size_t>(j - 1)];
      const double window =
          startup_delay + static_cast<double>(i - j) * tau - tau;
      needed = std::max(needed, bits / window);
    }
  }
  return needed;
}

}  // namespace lsm::core
