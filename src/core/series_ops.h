// Element-wise double-series accumulation, runtime-dispatched across SIMD
// tiers (core/simd_dispatch.h). This is the vector half of the statmux
// batched-epoch reduction (net/statmux.cpp): each shard records its
// per-epoch rate totals into a contiguous batch buffer, and the driver
// merges the shards in shard-index order with
//
//   for each shard s (ascending):  add_series(totals, shard[s].batch, n)
//
// The bit-exactness argument is by construction, not by care: add_series
// computes dst[k] += src[k] independently per element, so element k of the
// merged series sees exactly the additions
//
//   ((0 + shard0[k]) + shard1[k]) + ... + shardS-1[k]
//
// in shard-index order — the same IEEE-754 operation sequence, in the same
// order, as the pre-existing scalar per-epoch loop `for s: total +=
// shard[s].rate`. Vector lanes hold DIFFERENT elements k, never partial
// sums of one element, so no tier changes any element's association or
// rounding; scalar, SSE2, and AVX2 results are identical to the last bit
// at every level, and the 1-vs-N-thread / batch-vs-single identities of
// the statmux rate series follow. (Compare core/bounds_fold.h, where the
// same discipline needs a max/min-associativity argument — here the lanes
// never interact at all.)
//
// The AVX2 tier lives in series_avx2.cpp so -mavx2 stays per-file; the
// dispatcher degrades to the widest compiled tier at or below the active
// level, exactly like fold_bounds.
#pragma once

#include <cstddef>

namespace lsm::core::detail {

/// dst[k] += src[k] for k in [0, n). Per-tier entry points — every tier
/// returns bit-identical dst contents (element-wise, no cross-lane math).
void add_series_scalar(double* dst, const double* src,
                       std::size_t n) noexcept;
void add_series_sse2(double* dst, const double* src, std::size_t n) noexcept;
void add_series_avx2(double* dst, const double* src, std::size_t n) noexcept;

/// Runtime-dispatched element-wise accumulate: one relaxed load of the
/// active SIMD level, then the widest compiled tier at or below it.
void add_series(double* dst, const double* src, std::size_t n) noexcept;

}  // namespace lsm::core::detail
