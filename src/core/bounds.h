// Rate bounds of Theorem 1 and their lookahead extensions (paper Eqs. 5, 6,
// 12, 13). Exposed as free functions so the theorem's arithmetic can be
// tested independently of the rate-selection loop.
//
// All bounds concern the rate r_i chosen at time t_i for picture i:
//
//   lower(h):  sending pictures i..i+h at r_i keeps the (approximate) delay
//              of picture i+h within D              (Eq. 12; h=0 is Eq. 5)
//   upper(h):  sending pictures i..i+h at r_i does not finish before picture
//              i+h+K has arrived, so the server never idles
//                                                   (Eq. 13; h=0 is Eq. 6)
//
// A bound whose denominator is not positive is "not well defined"; following
// the paper, an ill-defined upper bound means "no constraint" (+infinity),
// and an ill-defined lower bound means the deadline is already unreachable
// at any finite rate (+infinity as well, which forces the early-exit path).
#pragma once

#include <limits>

#include "core/params.h"

namespace lsm::core {

inline constexpr Rate kUnbounded = std::numeric_limits<Rate>::infinity();

/// Lower bound r_i^L(h): sum_bits / (D + (i-1+h) tau - t_i), or +infinity if
/// the denominator is <= 0. `sum_bits` is S_i + ... + S_{i+h} (estimates
/// allowed for j > i).
Rate lookahead_lower_bound(double sum_bits, int i, int h, Seconds t_i,
                           const SmootherParams& params) noexcept;

/// Upper bound r_i^U(h): sum_bits / ((i+h+K) tau - t_i) if
/// t_i < (i+h+K) tau, else +infinity.
Rate lookahead_upper_bound(double sum_bits, int i, int h, Seconds t_i,
                           const SmootherParams& params) noexcept;

/// Theorem 1 bounds (h = 0) for picture i of size s_i.
Rate theorem_lower_bound(Bits s_i, int i, Seconds t_i,
                         const SmootherParams& params) noexcept;
Rate theorem_upper_bound(Bits s_i, int i, Seconds t_i,
                         const SmootherParams& params) noexcept;

}  // namespace lsm::core
