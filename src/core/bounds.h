// Rate bounds of Theorem 1 and their lookahead extensions (paper Eqs. 5, 6,
// 12, 13). Exposed as free functions so the theorem's arithmetic can be
// tested independently of the rate-selection loop.
//
// All bounds concern the rate r_i chosen at time t_i for picture i:
//
//   lower(h):  sending pictures i..i+h at r_i keeps the (approximate) delay
//              of picture i+h within D              (Eq. 12; h=0 is Eq. 5)
//   upper(h):  sending pictures i..i+h at r_i does not finish before picture
//              i+h+K has arrived, so the server never idles
//                                                   (Eq. 13; h=0 is Eq. 6)
//
// A bound whose denominator is not positive is "not well defined"; following
// the paper, an ill-defined upper bound means "no constraint" (+infinity),
// and an ill-defined lower bound means the deadline is already unreachable
// at any finite rate (+infinity as well, which forces the early-exit path).
#pragma once

#include <limits>

#include "core/params.h"

namespace lsm::core {

inline constexpr Rate kUnbounded = std::numeric_limits<Rate>::infinity();

/// Lower bound r_i^L(h): sum_bits / (D + (i-1+h) tau - t_i), or +infinity if
/// the denominator is <= 0. `sum_bits` is S_i + ... + S_{i+h} (estimates
/// allowed for j > i). Inline: these run up to H times per picture in the
/// rate-selection loop, the system's hottest code.
///
/// The `_at` forms take the picture count i-1+h (resp. deadline index
/// K+i+h) as an already-converted double so the loop can maintain it
/// incrementally (+1.0 per h). Both counts are integers far below 2^53, so
/// the incremental double is identical to the int conversion bit for bit.
inline Rate lookahead_lower_bound_at(double sum_bits, double pictures,
                                     Seconds t_i,
                                     const SmootherParams& params) noexcept {
  const double denom = params.D + pictures * params.tau - t_i;
  if (denom <= 0.0) return kUnbounded;
  return sum_bits / denom;
}

inline Rate lookahead_lower_bound(double sum_bits, int i, int h, Seconds t_i,
                                  const SmootherParams& params) noexcept {
  return lookahead_lower_bound_at(sum_bits, static_cast<double>(i - 1 + h),
                                  t_i, params);
}

/// Upper bound r_i^U(h): sum_bits / ((i+h+K) tau - t_i) if
/// t_i < (i+h+K) tau, else +infinity.
inline Rate lookahead_upper_bound_at(double sum_bits, double deadline_index,
                                     Seconds t_i,
                                     const SmootherParams& params) noexcept {
  const double deadline = deadline_index * params.tau;
  if (t_i >= deadline) return kUnbounded;
  return sum_bits / (deadline - t_i);
}

inline Rate lookahead_upper_bound(double sum_bits, int i, int h, Seconds t_i,
                                  const SmootherParams& params) noexcept {
  return lookahead_upper_bound_at(
      sum_bits, static_cast<double>(params.K + i + h), t_i, params);
}

/// Theorem 1 bounds (h = 0) for picture i of size s_i.
Rate theorem_lower_bound(Bits s_i, int i, Seconds t_i,
                         const SmootherParams& params) noexcept;
Rate theorem_upper_bound(Bits s_i, int i, Seconds t_i,
                         const SmootherParams& params) noexcept;

}  // namespace lsm::core
