#include "core/streaming.h"

#include <limits>
#include <stdexcept>

#include "core/rate_select.h"

namespace lsm::core {

StreamingSmoother::StreamingSmoother(lsm::trace::GopPattern pattern,
                                     SmootherParams params,
                                     DefaultSizes defaults,
                                     ExecutionPath path)
    : pattern_(pattern),
      params_(params),
      defaults_(defaults),
      kernel_(pattern, params.tau, defaults),
      use_fast_path_(path != ExecutionPath::kReference) {
  params_.validate();
}

void StreamingSmoother::push(Bits size) {
  if (finished_) {
    throw std::logic_error("StreamingSmoother::push after finish");
  }
  if (size <= 0) {
    throw std::invalid_argument("StreamingSmoother::push: size must be > 0");
  }
  sizes_.push_back(size);
  if (use_fast_path_) kernel_.on_push(size);
}

void StreamingSmoother::finish() {
  finished_ = true;
}

Bits StreamingSmoother::size_at(int j, Seconds t) const {
  if (j < 1) throw std::out_of_range("StreamingSmoother: bad picture index");
  // Walk back one pattern at a time until a pushed-and-arrived picture.
  int k = j;
  while (k >= 1) {
    const bool pushed = k <= pushed_count();
    const bool arrived = t >= static_cast<double>(k) * params_.tau - 1e-12;
    if (pushed && arrived) {
      return sizes_[static_cast<std::size_t>(k - 1)];
    }
    k -= pattern_.N();
  }
  return defaults_.of(pattern_.type_of(j));
}

bool StreamingSmoother::can_decide() const {
  const int i = next_;
  if (i > pushed_count()) return false;  // S_i itself not yet known
  if (finished_) return true;
  // Pre-finish: decide only once every picture that has *arrived* by t_i
  // has been pushed, so size_at reads exactly what the paper's size(j, t_i)
  // would.
  const Seconds t_i = std::max(
      depart_, static_cast<double>(i - 1 + params_.K) * params_.tau);
  return t_i <= static_cast<double>(pushed_count()) * params_.tau + 1e-12;
}

PictureSend StreamingSmoother::decide() {
  const int i = next_;
  const double tau = params_.tau;
  const int last_picture =
      finished_ ? pushed_count() : std::numeric_limits<int>::max() / 2;
  const int last_required = std::min(i - 1 + params_.K, last_picture);
  const Seconds time =
      std::max(depart_, static_cast<double>(last_required) * tau);

  const double fallback =
      static_cast<double>(sizes_[static_cast<std::size_t>(i - 1)]);
  const detail::RateDecision decision =
      use_fast_path_
          ? detail::select_rate_kernel(i, time, last_picture, rate_, params_,
                                       pattern_.N(), Variant::kBasic,
                                       fallback, kernel_)
          : detail::select_rate(
                i, time, last_picture, rate_, params_, pattern_.N(),
                Variant::kBasic, fallback,
                [this](int j, Seconds t) { return size_at(j, t); });
  const Rate previous_rate = rate_;
  rate_ = decision.rate;

  PictureSend send;
  send.index = i;
  send.bits = sizes_[static_cast<std::size_t>(i - 1)];
  send.start = time;
  send.rate = rate_;
  send.depart = time + static_cast<double>(send.bits) / rate_;
  send.delay = send.depart - static_cast<double>(i - 1) * tau;

  if (tracer_.on()) {
    const std::uint32_t picture = static_cast<std::uint32_t>(i);
    if (decision.diag.early_exit) {
      tracer_.emit(obs::EventKind::kBoundCrossing, picture, time,
                   decision.diag.lower, decision.diag.upper);
    }
    if (decision.diag.rate_changed) {
      tracer_.emit(obs::EventKind::kRateChange, picture, time, rate_,
                   previous_rate);
    }
    tracer_.emit(obs::EventKind::kPictureScheduled, picture, time, send.rate,
                 send.delay, send.depart);
  }

  depart_ = send.depart;
  ++next_;
  return send;
}

std::vector<PictureSend> StreamingSmoother::drain() {
  std::vector<PictureSend> sends;
  while (can_decide()) sends.push_back(decide());
  return sends;
}

}  // namespace lsm::core
