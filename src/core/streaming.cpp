#include "core/streaming.h"

#include <limits>
#include <stdexcept>

#include "core/rate_select.h"

namespace lsm::core {

namespace {
/// Trims are batched: only once this many pictures have become unreachable
/// is the dead prefix erased, so the per-push cost stays amortized O(1)
/// while an endless stream retains O(kTrimChunk + N) pictures.
constexpr int kTrimChunk = 64;
}  // namespace

StreamingSmoother::StreamingSmoother(lsm::trace::GopPattern pattern,
                                     SmootherParams params,
                                     DefaultSizes defaults,
                                     ExecutionPath path)
    : pattern_(pattern),
      params_(params),
      defaults_(defaults),
      kernel_(pattern, params.tau, defaults),
      use_fast_path_(path != ExecutionPath::kReference) {
  params_.validate();
}

void StreamingSmoother::reset(lsm::trace::GopPattern pattern,
                              SmootherParams params, DefaultSizes defaults,
                              ExecutionPath path) {
  params.validate();
  pattern_ = pattern;
  params_ = params;
  defaults_ = defaults;
  sizes_.clear();  // capacity retained: the point of resetting in place
  kernel_.reset(pattern, params.tau, defaults);
  use_fast_path_ = path != ExecutionPath::kReference;
  finished_ = false;
  dirty_ = false;
  pushed_ = 0;
  base_ = 1;
  tracer_ = obs::StreamTracer();  // re-binds to the ambient StreamScope
  next_ = 1;
  depart_ = 0.0;
  rate_ = 0.0;
}

void StreamingSmoother::push(Bits size) {
  if (finished_) {
    throw std::logic_error("StreamingSmoother::push after finish");
  }
  if (size <= 0) {
    throw std::invalid_argument("StreamingSmoother::push: size must be > 0");
  }
  sizes_.push_back(size);
  ++pushed_;
  if (use_fast_path_) kernel_.on_push(size);
  dirty_ = true;
}

void StreamingSmoother::finish() {
  finished_ = true;
  dirty_ = true;
}

Bits StreamingSmoother::size_at(int j, Seconds t) const {
  if (j < 1) throw std::out_of_range("StreamingSmoother: bad picture index");
  // Walk back one pattern at a time until a pushed-and-arrived picture.
  // The first hit lies at most one pattern below the arrival frontier,
  // which never trails the decision frontier by more than a pattern — so
  // it is always a retained index (>= base_, see maybe_trim).
  int k = j;
  while (k >= 1) {
    const bool pushed = k <= pushed_;
    const bool arrived = t >= static_cast<double>(k) * params_.tau - 1e-12;
    if (pushed && arrived) {
      return sizes_[static_cast<std::size_t>(k - base_)];
    }
    k -= pattern_.N();
  }
  return defaults_.of(pattern_.type_of(j));
}

bool StreamingSmoother::can_decide() const {
  const int i = next_;
  if (i > pushed_) return false;  // S_i itself not yet known
  if (finished_) return true;
  // Pre-finish: decide only once every picture that has *arrived* by t_i
  // has been pushed, so size_at reads exactly what the paper's size(j, t_i)
  // would.
  const Seconds t_i = std::max(
      depart_, static_cast<double>(i - 1 + params_.K) * params_.tau);
  return t_i <= static_cast<double>(pushed_) * params_.tau + 1e-12;
}

PictureSend StreamingSmoother::decide() {
  const int i = next_;
  const double tau = params_.tau;
  const int last_picture =
      finished_ ? pushed_ : std::numeric_limits<int>::max() / 2;
  const int last_required = std::min(i - 1 + params_.K, last_picture);
  const Seconds time =
      std::max(depart_, static_cast<double>(last_required) * tau);

  const double fallback =
      static_cast<double>(sizes_[static_cast<std::size_t>(i - base_)]);
  const detail::RateDecision decision =
      use_fast_path_
          ? detail::select_rate_kernel(i, time, last_picture, rate_, params_,
                                       pattern_.N(), Variant::kBasic,
                                       fallback, kernel_)
          : detail::select_rate(
                i, time, last_picture, rate_, params_, pattern_.N(),
                Variant::kBasic, fallback,
                [this](int j, Seconds t) { return size_at(j, t); });
  const Rate previous_rate = rate_;
  rate_ = decision.rate;

  PictureSend send;
  send.index = i;
  send.bits = sizes_[static_cast<std::size_t>(i - base_)];
  send.start = time;
  send.rate = rate_;
  send.depart = time + static_cast<double>(send.bits) / rate_;
  send.delay = send.depart - static_cast<double>(i - 1) * tau;

  if (tracer_.on()) {
    const std::uint32_t picture = static_cast<std::uint32_t>(i);
    if (decision.diag.early_exit) {
      tracer_.emit(obs::EventKind::kBoundCrossing, picture, time,
                   decision.diag.lower, decision.diag.upper);
    }
    if (decision.diag.rate_changed) {
      tracer_.emit(obs::EventKind::kRateChange, picture, time, rate_,
                   previous_rate);
    }
    tracer_.emit(obs::EventKind::kPictureScheduled, picture, time, send.rate,
                 send.delay, send.depart);
  }

  depart_ = send.depart;
  ++next_;
  return send;
}

void StreamingSmoother::maybe_trim() {
  // Lowest logical index any future read can touch: window sums start at
  // the decision frontier (prefix index next_ - 1), and estimates land at
  // most one pattern below an arrival frontier that never trails next_ - 1
  // (decisions wait for t_i within pushed time). One extra pattern of slack
  // keeps the bound comfortably conservative.
  const int keep_from = next_ - 1 - 2 * pattern_.N();
  if (keep_from - base_ < kTrimChunk) return;
  sizes_.erase(sizes_.begin(), sizes_.begin() + (keep_from - base_));
  if (use_fast_path_) kernel_.trim_to(keep_from);
  base_ = keep_from;
}

std::vector<PictureSend> StreamingSmoother::drain() {
  std::vector<PictureSend> sends;
  drain_into(sends);
  return sends;
}

int StreamingSmoother::drain_into(std::vector<PictureSend>& out) {
  int appended = 0;
  while (can_decide()) {
    out.push_back(decide());
    ++appended;
  }
  dirty_ = false;
  maybe_trim();
  return appended;
}

}  // namespace lsm::core
