// AVX2 tier of the dual-bound fold. Compiled with -mavx2 for THIS
// translation unit only (src/core/CMakeLists.txt); it is reached solely
// through fold_bounds() after the dispatcher has checked the active SIMD
// level, so no wide instruction can execute on a host (or under a forced
// LSM_SIMD_LEVEL) below avx2.
//
// The algorithm is the SSE2 fold widened: each 256-bit vector carries TWO
// lookahead steps in the [lower, -upper, lower, -upper] lane layout, so
// one vdivpd retires two steps' worth of bound divisions. On every core
// with a 256-bit divider (Ice Lake and later, Zen 2 and later) vdivpd ymm
// has the same instruction throughput as divpd xmm, which halves the
// division cost per step — and the surrounding mul/sub/cmp/blend/max work
// halves with it. Each lane performs exactly the scalar sequence of IEEE
// operations, and the running max/min fold is associative over these
// values (never NaN, never -0.0), so any lane-to-accumulator assignment
// is bit-identical to the sequential chain (see bounds_fold.h).
#include "core/bounds_fold.h"

#if defined(LSM_CORE_HAVE_AVX2)

#include <immintrin.h>

#include "core/bounds.h"

namespace lsm::core::detail {

BoundsFoldResult fold_bounds_avx2(const double* sums, int n, int i,
                                  Seconds t_i,
                                  const SmootherParams& params) noexcept {
  if (n < 4) {
    // Too shallow to fill even one two-accumulator round; the 128-bit
    // loop is equally identical and has no width to waste.
    return fold_bounds_sse2(sums, n, i, t_i, params);
  }
  const __m256d tau4 = _mm256_set1_pd(params.tau);
  const __m256d t_i4 = _mm256_set1_pd(t_i);
  // Lane layout (low lane first): [lower(h), -upper(h), lower(h+1),
  // -upper(h+1)]. den = idx * tau + offset - t_i evaluates the lower
  // lanes as (i-1+h)*tau + D - t_i and the upper lanes as
  // (K+i+h)*tau + 0 - t_i; adding D first is commutative and adding 0.0
  // to a positive value is exact, so every lane matches the scalar
  // expressions bit for bit.
  const __m256d d_offset = _mm256_set_pd(0.0, params.D, 0.0, params.D);
  const __m256d neg_up = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
  const __m256d invalid =
      _mm256_set_pd(-kUnbounded, kUnbounded, -kUnbounded, kUnbounded);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d four = _mm256_set1_pd(4.0);
  // [i-1+h, K+i+h, i-1+h+1, K+i+h+1], advanced by +4.0 per accumulator;
  // integers far below 2^53, identical to the int conversions they
  // replace.
  const double low0 = static_cast<double>(i - 1);
  const double up0 = static_cast<double>(params.K + i);
  __m256d idx0 = _mm256_set_pd(up0 + 1.0, low0 + 1.0, up0, low0);
  __m256d idx1 = _mm256_add_pd(idx0, _mm256_set1_pd(2.0));
  const __m256d init = _mm256_set_pd(-kUnbounded, 0.0, -kUnbounded, 0.0);
  __m256d run0 = init;
  __m256d run1 = init;
  // Two steps per vector: duplicate [s(h), s(h+1)] into
  // [s(h), s(h), s(h+1), s(h+1)], divide by both steps' denominators at
  // once, route ill-defined bounds to +/-infinity exactly like the
  // scalar guards, and fold into the running accumulator.
  const auto block = [&](const double* s2, __m256d idx, __m256d& run) {
    const __m256d pair = _mm256_castpd128_pd256(_mm_loadu_pd(s2));
    const __m256d s = _mm256_permute4x64_pd(pair, 0x50);  // [s0,s0,s1,s1]
    const __m256d den =
        _mm256_sub_pd(_mm256_add_pd(_mm256_mul_pd(idx, tau4), d_offset),
                      t_i4);
    const __m256d v = _mm256_xor_pd(_mm256_div_pd(s, den), neg_up);
    const __m256d ok = _mm256_cmp_pd(den, zero, _CMP_GT_OQ);
    run = _mm256_max_pd(run, _mm256_blendv_pd(invalid, v, ok));
  };
  int h = 0;
  for (; h + 3 < n; h += 4) {
    block(sums + h, idx0, run0);
    idx0 = _mm256_add_pd(idx0, four);
    block(sums + h + 2, idx1, run1);
    idx1 = _mm256_add_pd(idx1, four);
  }
  if (h + 1 < n) {
    block(sums + h, idx0, run0);
    h += 2;
  }
  // Fold the accumulators down to one [lower max, -upper min] pair; the
  // odd tail step (if any) rides the 128-bit lane shape.
  const __m256d both = _mm256_max_pd(run0, run1);
  __m128d run = _mm_max_pd(_mm256_castpd256_pd128(both),
                           _mm256_extractf128_pd(both, 1));
  if (h < n) {
    const __m128d tau2 = _mm_set1_pd(params.tau);
    const __m128d t_i2 = _mm_set1_pd(t_i);
    const __m128d idx = _mm_set_pd(up0 + static_cast<double>(h),
                                   low0 + static_cast<double>(h));
    const __m128d den = _mm_sub_pd(
        _mm_add_pd(_mm_mul_pd(idx, tau2), _mm_set_pd(0.0, params.D)), t_i2);
    const __m128d v = _mm_xor_pd(_mm_div_pd(_mm_set1_pd(sums[h]), den),
                                 _mm_set_pd(-0.0, 0.0));
    const __m128d ok = _mm_cmpgt_pd(den, _mm_setzero_pd());
    const __m128d inv2 = _mm_set_pd(-kUnbounded, kUnbounded);
    run = _mm_max_pd(
        run, _mm_or_pd(_mm_and_pd(ok, v), _mm_andnot_pd(ok, inv2)));
  }
  alignas(16) double folded[2];
  _mm_store_pd(folded, run);
  return {folded[0], -folded[1]};
}

}  // namespace lsm::core::detail

#endif  // LSM_CORE_HAVE_AVX2
