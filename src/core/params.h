// Parameters of the smoothing algorithm (paper, Section 4.1):
//
//   D — maximum delay for every picture (seconds); the delay of picture i is
//       d_i - (i-1)tau and includes encoding, queueing, and sending delay.
//   K — number of completely-arrived pictures required before the server may
//       begin sending picture i (pictures i .. i+K-1 must have arrived).
//   H — lookahead interval in pictures used by the rate-selection loop.
//
// Satisfiability (paper Eq. 1): the delay bound is guaranteed only when
// K >= 1 and D >= (K+1) tau. K = 0 and smaller D are *permitted* (the paper
// itself runs K = 0 experiments to exhibit violations); use
// guarantees_delay_bound() to ask whether Theorem 1 applies.
#pragma once

#include <stdexcept>

#include "trace/trace.h"

namespace lsm::core {

using Bits = lsm::trace::Bits;
using Seconds = double;
using Rate = double;  // bits per second

/// Thrown when parameters are structurally invalid (not merely outside the
/// Theorem 1 regime).
class InvalidParams : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

struct SmootherParams {
  Seconds D = 0.2;                     ///< delay bound, seconds
  int K = 1;                           ///< pictures required in queue
  int H = 9;                           ///< lookahead interval, pictures
  Seconds tau = lsm::trace::kDefaultTau;  ///< picture period, seconds

  /// Channel rate granularity in bits/s; 0 means a continuous-rate channel.
  /// Networks of the paper's era offered discrete rate classes (the p x 64
  /// kb/s channels its introduction cites for H.261): when > 0, selected
  /// rates are snapped to the nearest multiple that still lies inside the
  /// Theorem 1 interval [r^L, r^U] — so the guarantees are untouched; when
  /// no multiple fits, the exact rate is used for that picture.
  Rate rate_quantum = 0.0;

  /// Throws InvalidParams unless D > 0, K >= 0, H >= 1, tau > 0,
  /// rate_quantum >= 0.
  void validate() const;

  /// True iff Theorem 1 guarantees the delay bound and continuous service:
  /// K >= 1 and D >= (K+1) tau (Eq. 1).
  bool guarantees_delay_bound() const noexcept;
};

}  // namespace lsm::core
