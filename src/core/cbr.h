// Constant-bit-rate transmission with startup delay: the simplest possible
// alternative to smoothing. The channel runs at one fixed rate R from the
// start; the receiver waits a startup delay d before displaying picture 1
// and then plays at the picture rate. Bigger d tolerates a smaller R (down
// to the long-run mean); the (R, d) tradeoff curve is the classic yardstick
// smoothing algorithms are measured against.
//
// Model: a work-conserving server at rate R drains the encoder queue
// (picture i available at i tau). Picture i's delivery completes at
//
//   delivery_i = max_{1 <= j <= i} ( j tau + (cum_i - cum_{j-1}) / R )
//
// (the last cum_i - cum_{j-1} bits cannot start before picture j arrives),
// and the minimal startup delay is max_i (delivery_i - (i-1) tau).
#pragma once

#include "core/params.h"

namespace lsm::core {

/// Minimal startup delay for CBR rate R (bits/s). Requires R > 0; returns
/// +infinity when R is below the long-run requirement of some suffix (every
/// finite trace has a finite answer for any R > 0, so this is always
/// finite — but enormous for tiny R).
Seconds min_startup_delay(const lsm::trace::Trace& trace, Rate rate);

/// Minimal CBR rate whose startup delay is <= `startup_delay`. Requires
/// startup_delay > 0.
Rate min_cbr_rate(const lsm::trace::Trace& trace, Seconds startup_delay);

}  // namespace lsm::core
