// Internal: the dual-bound fold of the rate-selection loop, split out of
// rate_select.h so it can be runtime-dispatched (core/simd_dispatch.h)
// across per-file-compiled SIMD tiers.
//
// Given the lookahead window sums S_i..S_{i+h} for h = 0..n-1, the fold
// computes
//
//   lower = max_h  lookahead_lower_bound(sums[h], i, h, t_i, params)
//   upper = min_h  lookahead_upper_bound(sums[h], i, h, t_i, params)
//
// exactly as the paper's sequential running intersection would, and the
// caller (select_rate_sums) detects a Section 4.4 crossing post hoc from
// lower > upper. Every tier must return bitwise-identical doubles:
//
// Every tier evaluates the same rounded quotient per step that the
// sequential loop computes — each vector lane performs the identical
// sequence of IEEE operations as the scalar expressions (operand-order
// notes in the kernels) — and folds with max/min, which are associative
// and commutative over these values (never NaN: denominators are
// compared against zero before dividing; never -0.0: sums >= 0 and only
// positive denominators are divided). So ANY assignment of steps to
// lanes and accumulators gives the identical double, and each wider tier
// is bit-for-bit the SSE2 fold with more steps in flight:
//
//   * sse2    one step  per __m128d: lanes [lower(h), -upper(h)]
//   * avx2    two steps per __m256d: one vdivpd retires both steps'
//             divisions
//   * avx512  four steps per __m512d, lane predicates in opmasks
//
// The payoff depends on the divider width. On cores with a 256/512-bit
// FP divider (Intel Ice Lake and later, AMD Zen 2 and later) vdivpd
// ymm/zmm has roughly the same instruction throughput as divpd xmm, so
// the division cost per step drops ~2x/~4x, and the surrounding
// mul/sub/cmp/blend/max work shrinks with it. On older cores that crack
// wide divides into 128-bit halves the wide tiers degrade to ~SSE2
// division throughput but still save the non-division instructions.
#pragma once

#include "core/params.h"

namespace lsm::core::detail {

struct BoundsFoldResult {
  Rate lower;
  Rate upper;
};

/// Per-tier folds. All take the window sums for h = 0..n-1 (n >= 1), the
/// picture index i, and the decision time t_i, and return the identical
/// {lower, upper} pair. The avx2/avx512 entry points exist only when the
/// toolchain can compile the tier (LSM_CORE_HAVE_AVX2/LSM_CORE_HAVE_AVX512
/// are defined for lsm_core's own translation units by CMake); the
/// dispatcher degrades to the widest compiled tier below the active level.
BoundsFoldResult fold_bounds_scalar(const double* sums, int n, int i,
                                    Seconds t_i,
                                    const SmootherParams& params) noexcept;
BoundsFoldResult fold_bounds_sse2(const double* sums, int n, int i,
                                  Seconds t_i,
                                  const SmootherParams& params) noexcept;
BoundsFoldResult fold_bounds_avx2(const double* sums, int n, int i,
                                  Seconds t_i,
                                  const SmootherParams& params) noexcept;
BoundsFoldResult fold_bounds_avx512(const double* sums, int n, int i,
                                    Seconds t_i,
                                    const SmootherParams& params) noexcept;

/// Runtime-dispatched fold: one relaxed load of the active SIMD level
/// (simd::active_simd_level()), then the widest compiled tier at or below
/// it. Called once per smoothing step — the load is noise next to the
/// fold itself.
BoundsFoldResult fold_bounds(const double* sums, int n, int i, Seconds t_i,
                             const SmootherParams& params) noexcept;

}  // namespace lsm::core::detail
