// Checker for the correctness properties of Theorem 1 against a concrete
// smoothing run:
//
//   (7) delay_i <= D for every picture,
//   (8) t_{i+1} <= i tau + D,
//   (9) t_{i+1} = d_i (continuous service).
//
// Theorem 1 guarantees all three when K >= 1, D >= (K+1) tau, and rates are
// chosen inside [r^L, r^U] — which the engine does. The checker exists to
// *verify* runs (property tests), and to measure violations in the regimes
// the paper deliberately explores outside the theorem (K = 0 with small
// slack, Section 5.2).
#pragma once

#include <vector>

#include "core/smoother.h"

namespace lsm::core {

struct TheoremReport {
  bool delay_bound_ok = true;        ///< Eq. (7) for all pictures
  bool start_bound_ok = true;        ///< Eq. (8) for all pictures
  bool continuous_service_ok = true; ///< Eq. (9) for all pictures
  int delay_violations = 0;
  Seconds max_delay = 0.0;
  Seconds worst_excess = 0.0;        ///< max(delay_i - D), <= 0 when ok
  std::vector<int> violating_pictures;  ///< indices with delay_i > D

  bool all_ok() const noexcept {
    return delay_bound_ok && start_bound_ok && continuous_service_ok;
  }
};

/// Verifies a finished run against `trace`. Time comparisons use a small
/// absolute tolerance (1e-9 s) so exact-boundary schedules pass.
TheoremReport check_theorem1(const SmoothingResult& result,
                             const lsm::trace::Trace& trace);

}  // namespace lsm::core
