// Buffer-occupancy analysis for the Figure 1 system model: how much memory
// do the sender's smoothing queue and the receiver's playout buffer actually
// need? Smoothing trades delay for rate smoothness, and this module prices
// that trade in bits.
//
// Sender queue: Q(t) = A(t) - X(t), with A(t) the cumulative encoder output
// (the S_i bits of picture i arrive as a linear ramp over ((i-1)tau, i tau],
// per the system model) and X(t) the cumulative bits sent by the schedule.
//
// Receiver buffer: R(t) = X(t - latency) - P(t), where P(t) removes picture
// i's S_i bits at its playout instant offset + (i-1) tau. R dipping below
// zero is exactly a playout underflow; its maximum is the playout buffer
// size to provision.
#pragma once

#include <vector>

#include "core/smoother.h"

namespace lsm::core {

/// One sampled occupancy point.
struct OccupancySample {
  Seconds time = 0.0;
  double bits = 0.0;
};

struct BufferAnalysis {
  double max_sender_bits = 0.0;
  double mean_sender_bits = 0.0;   ///< time-average over [0, d_n]
  double max_receiver_bits = 0.0;  ///< peak just before each playout removal
  double min_receiver_bits = 0.0;  ///< negative iff some picture is late
  int underflows = 0;              ///< pictures not fully present at playout
  std::vector<OccupancySample> sender;    ///< at all model breakpoints
  std::vector<OccupancySample> receiver;  ///< pre-removal values at playouts
};

/// Analyzes `result` (a smoothing run over `trace`). `latency` is the fixed
/// network delay; `playout_offset` is when picture 1 is displayed (pictures
/// then follow every tau). Throws std::invalid_argument on negative latency
/// or a result/trace length mismatch.
BufferAnalysis analyze_buffers(const lsm::trace::Trace& trace,
                               const SmoothingResult& result,
                               Seconds latency, Seconds playout_offset);

}  // namespace lsm::core
