#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace lsm::core {

RateMoments rate_moments(const RateSchedule& schedule, Seconds a, Seconds b) {
  if (!(b > a)) {
    throw std::invalid_argument("rate_moments: empty interval");
  }
  const double span = b - a;
  const double mean = schedule.integral(a, b) / span;

  // Second moment over the same interval, including zero-rate gaps.
  double second = 0.0;
  double covered = 0.0;
  for (const RateSegment& s : schedule.segments()) {
    const Seconds lo = std::max(a, s.begin);
    const Seconds hi = std::min(b, s.end);
    if (hi > lo) {
      second += s.rate * s.rate * (hi - lo);
      covered += hi - lo;
    }
  }
  // Remaining (uncovered) time contributes rate 0.
  (void)covered;
  const double variance = std::max(0.0, second / span - mean * mean);
  return RateMoments{mean, std::sqrt(variance)};
}

double area_difference(const RateSchedule& smoothed, const RateSchedule& ideal,
                       Seconds shift, Seconds T) {
  if (!(T > 0.0)) throw std::invalid_argument("area_difference: T <= 0");
  const RateSchedule reference = ideal.shifted_left(shift);

  // Merge breakpoints of both schedules; both are constant between them.
  std::vector<Seconds> points;
  points.push_back(0.0);
  points.push_back(T);
  for (const Seconds t : smoothed.breakpoints()) {
    if (t > 0.0 && t < T) points.push_back(t);
  }
  for (const Seconds t : reference.breakpoints()) {
    if (t > 0.0 && t < T) points.push_back(t);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  double excess = 0.0;
  double reference_area = 0.0;
  for (std::size_t k = 0; k + 1 < points.size(); ++k) {
    const Seconds lo = points[k];
    const Seconds hi = points[k + 1];
    const Seconds mid = 0.5 * (lo + hi);
    const Rate r = smoothed.rate_at(mid);
    const Rate ref = reference.rate_at(mid);
    excess += std::max(0.0, r - ref) * (hi - lo);
    reference_area += ref * (hi - lo);
  }
  if (reference_area <= 0.0) {
    throw std::invalid_argument("area_difference: reference area is zero");
  }
  return excess / reference_area;
}

RateChangeProfile rate_change_profile(const SmoothingResult& result) {
  RateChangeProfile profile;
  if (result.sends.empty()) return profile;
  double magnitude_sum = 0.0;
  for (std::size_t k = 1; k < result.sends.size(); ++k) {
    const Rate previous = result.sends[k - 1].rate;
    const Rate current = result.sends[k].rate;
    const Rate magnitude = std::abs(current - previous);
    if (magnitude <= 1e-9 * std::max(std::abs(current), 1.0)) continue;
    ++profile.changes;
    magnitude_sum += magnitude;
    profile.max_magnitude = std::max(profile.max_magnitude, magnitude);
  }
  if (profile.changes > 0) {
    profile.mean_magnitude = magnitude_sum / profile.changes;
    const RateSchedule schedule = result.schedule();
    const double span = schedule.end_time() - schedule.start_time();
    if (span > 0.0) {
      const double mean_rate =
          schedule.integral(schedule.start_time(), schedule.end_time()) / span;
      if (mean_rate > 0.0) {
        profile.mean_relative = profile.mean_magnitude / mean_rate;
      }
    }
  }
  return profile;
}

Seconds min_delay_for_peak(const lsm::trace::Trace& trace,
                           const SmootherParams& base, Rate target_peak,
                           Seconds d_max, Seconds precision) {
  if (!(target_peak > 0.0) || !(precision > 0.0)) {
    throw std::invalid_argument("min_delay_for_peak: bad arguments");
  }
  auto peak_at = [&trace, &base](Seconds d) {
    SmootherParams params = base;
    params.D = d;
    return smooth_basic(trace, params).schedule().max_rate();
  };
  Seconds lo = (base.K + 1) * base.tau;
  Seconds hi = std::max(d_max, lo + precision);
  if (peak_at(hi) > target_peak) return -1.0;
  if (peak_at(lo) <= target_peak) return lo;
  // The peak is not strictly monotone in D (estimates shift), but it is
  // monotone enough for a bisection to land within a step of the frontier;
  // the returned D is validated to meet the target.
  while (hi - lo > precision) {
    const Seconds mid = 0.5 * (lo + hi);
    if (peak_at(mid) <= target_peak) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return peak_at(hi) <= target_peak ? hi : -1.0;
}

SmoothnessMetrics evaluate(const SmoothingResult& result,
                           const lsm::trace::Trace& trace) {
  SmoothnessMetrics metrics;
  const RateSchedule schedule = result.schedule();
  const SmoothingResult ideal = smooth_ideal(trace);
  const RateSchedule ideal_schedule = ideal.schedule();

  const Seconds shift =
      (static_cast<double>(trace.pattern().N()) -
       static_cast<double>(result.params.K)) *
      result.params.tau;
  const Seconds T = schedule.end_time();

  metrics.area_difference =
      area_difference(schedule, ideal_schedule, shift, T);
  metrics.rate_changes = result.rate_change_count();
  metrics.max_rate = schedule.max_rate();
  const RateMoments moments = rate_moments(schedule, 0.0, T);
  metrics.rate_mean = moments.mean;
  metrics.rate_stddev = moments.stddev;
  metrics.max_delay = result.max_delay();
  return metrics;
}

}  // namespace lsm::core
