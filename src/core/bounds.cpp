#include "core/bounds.h"

namespace lsm::core {

Rate lookahead_lower_bound(double sum_bits, int i, int h, Seconds t_i,
                           const SmootherParams& params) noexcept {
  const double denom =
      params.D + static_cast<double>(i - 1 + h) * params.tau - t_i;
  if (denom <= 0.0) return kUnbounded;
  return sum_bits / denom;
}

Rate lookahead_upper_bound(double sum_bits, int i, int h, Seconds t_i,
                           const SmootherParams& params) noexcept {
  const double deadline = static_cast<double>(params.K + i + h) * params.tau;
  if (t_i >= deadline) return kUnbounded;
  return sum_bits / (deadline - t_i);
}

Rate theorem_lower_bound(Bits s_i, int i, Seconds t_i,
                         const SmootherParams& params) noexcept {
  return lookahead_lower_bound(static_cast<double>(s_i), i, 0, t_i, params);
}

Rate theorem_upper_bound(Bits s_i, int i, Seconds t_i,
                         const SmootherParams& params) noexcept {
  return lookahead_upper_bound(static_cast<double>(s_i), i, 0, t_i, params);
}

}  // namespace lsm::core
