#include "core/bounds.h"

namespace lsm::core {

Rate theorem_lower_bound(Bits s_i, int i, Seconds t_i,
                         const SmootherParams& params) noexcept {
  return lookahead_lower_bound(static_cast<double>(s_i), i, 0, t_i, params);
}

Rate theorem_upper_bound(Bits s_i, int i, Seconds t_i,
                         const SmootherParams& params) noexcept {
  return lookahead_upper_bound(static_cast<double>(s_i), i, 0, t_i, params);
}

}  // namespace lsm::core
