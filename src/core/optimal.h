// Offline-optimal lossless smoothing with a-priori-known picture sizes: the
// baseline the paper contrasts with (Ott, Lakshman & Tabatabai [8] assume
// all sizes known and have no K parameter and no repeating pattern).
//
// Formulation. Let cum_i = S_1 + ... + S_i. The cumulative bits sent X(t)
// must stay inside a corridor:
//
//   availability (upper): bits of picture i can be sent only after its
//     arrival completes at i tau, so X(t) <= cum_{floor(t/tau)} —
//     approaching from the left, X(i tau) <= cum_{i-1} holds by continuity;
//   deadline (lower): picture i must fully depart by (i-1) tau + D, so
//     X(t) >= cum_i for t >= (i-1) tau + D.
//
// The schedule minimizing both the peak rate and the rate variance among all
// feasible schedules is the *taut string* (shortest path) through this
// corridor — a classical majorization argument. Feasibility requires
// D > tau strictly (at D == tau the deadline of picture i coincides with its
// arrival instant and no finite rate suffices).
#pragma once

#include <vector>

#include "core/schedule.h"

namespace lsm::core {

/// Result of the offline-optimal smoother.
struct OptimalResult {
  RateSchedule schedule;             ///< piecewise-constant r(t)
  std::vector<Seconds> departures;   ///< d_i per picture (1-based at [i-1])
  std::vector<Seconds> delays;       ///< d_i - (i-1) tau
  Rate peak_rate = 0.0;              ///< max slope of the taut string

  Seconds max_delay() const noexcept;
};

/// Computes the taut-string schedule for `trace` under delay bound `D`.
/// Throws std::invalid_argument if D <= tau (infeasible corridor).
OptimalResult smooth_offline_optimal(const lsm::trace::Trace& trace,
                                     Seconds D);

/// Lower bound on the peak rate of *any* feasible schedule for this corridor
/// (max average slope over corridor-constrained intervals). The taut string
/// attains it; exposed for tests.
Rate minimal_feasible_peak(const lsm::trace::Trace& trace, Seconds D);

/// Buffer-constrained variant: additionally caps the RECEIVER buffer at
/// `receiver_buffer_bits`. The decoder removes picture i's bits at its
/// playout instant playout_offset + (i-1) tau, so the upper corridor
/// becomes min(availability, played(t) + B) and the lower corridor also
/// enforces "picture i fully delivered by its playout". This is the classic
/// client-buffer-constrained smoothing formulation that followed the paper
/// (Salehi et al.); with B = +infinity and playout_offset >= D it reduces
/// exactly to smooth_offline_optimal.
///
/// Throws std::invalid_argument if D <= tau, playout_offset < tau, the
/// buffer cannot hold the largest picture, or the corridor is otherwise
/// infeasible.
OptimalResult smooth_offline_optimal_buffered(const lsm::trace::Trace& trace,
                                              Seconds D,
                                              double receiver_buffer_bits,
                                              Seconds playout_offset);

}  // namespace lsm::core
