#include "core/theorem.h"

#include <algorithm>
#include <cmath>

namespace lsm::core {

namespace {
constexpr double kTimeTolerance = 1e-9;
}

TheoremReport check_theorem1(const SmoothingResult& result,
                             const lsm::trace::Trace& trace) {
  TheoremReport report;
  const SmootherParams& params = result.params;
  const int n = static_cast<int>(result.sends.size());

  for (int k = 0; k < n; ++k) {
    const PictureSend& send = result.sends[static_cast<std::size_t>(k)];
    report.max_delay = std::max(report.max_delay, send.delay);
    report.worst_excess =
        std::max(report.worst_excess, send.delay - params.D);
    if (send.delay > params.D + kTimeTolerance) {
      report.delay_bound_ok = false;
      ++report.delay_violations;
      report.violating_pictures.push_back(send.index);
    }
    if (k + 1 < n) {
      const PictureSend& next = result.sends[static_cast<std::size_t>(k + 1)];
      // (8): t_{i+1} <= i tau + D.
      if (next.start > static_cast<double>(send.index) * params.tau +
                           params.D + kTimeTolerance) {
        report.start_bound_ok = false;
      }
      // (9): continuous service — the next send begins exactly at d_i. The
      // truncated wait near sequence end still satisfies this (the server
      // never idles once started).
      if (std::abs(next.start - send.depart) > kTimeTolerance &&
          next.start > send.depart) {
        report.continuous_service_ok = false;
      }
    }
  }
  (void)trace;
  return report;
}

}  // namespace lsm::core
