#include "core/schedule.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lsm::core {

namespace {
constexpr double kTimeEps = 1e-12;
}

RateSchedule::RateSchedule(std::vector<RateSegment> segments)
    : segments_(std::move(segments)) {
  for (std::size_t k = 0; k < segments_.size(); ++k) {
    const RateSegment& s = segments_[k];
    if (!(s.begin < s.end)) {
      throw std::invalid_argument("RateSchedule: segment with begin >= end");
    }
    if (s.rate < 0.0 || !std::isfinite(s.rate)) {
      throw std::invalid_argument("RateSchedule: invalid rate");
    }
    if (k > 0 && s.begin < segments_[k - 1].end - kTimeEps) {
      throw std::invalid_argument("RateSchedule: overlapping segments");
    }
  }
}

RateSchedule RateSchedule::from_sends(const std::vector<PictureSend>& sends) {
  std::vector<RateSegment> segments;
  segments.reserve(sends.size());
  for (const PictureSend& send : sends) {
    if (send.depart > send.start) {
      segments.push_back(RateSegment{send.start, send.depart, send.rate});
    }
  }
  return RateSchedule(std::move(segments));
}

Seconds RateSchedule::start_time() const noexcept {
  return segments_.empty() ? 0.0 : segments_.front().begin;
}

Seconds RateSchedule::end_time() const noexcept {
  return segments_.empty() ? 0.0 : segments_.back().end;
}

Rate RateSchedule::rate_at(Seconds t) const noexcept {
  // First segment whose end is after t; right-continuous at breakpoints.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](Seconds value, const RateSegment& s) { return value < s.end; });
  if (it == segments_.end() || t < it->begin) return 0.0;
  return it->rate;
}

double RateSchedule::integral(Seconds a, Seconds b) const {
  if (a > b) throw std::invalid_argument("RateSchedule::integral: a > b");
  double total = 0.0;
  for (const RateSegment& s : segments_) {
    const Seconds lo = std::max(a, s.begin);
    const Seconds hi = std::min(b, s.end);
    if (hi > lo) total += s.rate * (hi - lo);
    if (s.begin >= b) break;
  }
  return total;
}

Rate RateSchedule::max_rate() const noexcept {
  Rate peak = 0.0;
  for (const RateSegment& s : segments_) peak = std::max(peak, s.rate);
  return peak;
}

std::vector<Seconds> RateSchedule::breakpoints() const {
  std::vector<Seconds> points;
  points.reserve(segments_.size() * 2);
  for (const RateSegment& s : segments_) {
    points.push_back(s.begin);
    points.push_back(s.end);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end(),
                           [](Seconds a, Seconds b) {
                             return std::abs(a - b) <= kTimeEps;
                           }),
               points.end());
  return points;
}

RateSchedule RateSchedule::shifted_left(Seconds shift) const {
  std::vector<RateSegment> moved;
  moved.reserve(segments_.size());
  for (const RateSegment& s : segments_) {
    moved.push_back(RateSegment{s.begin - shift, s.end - shift, s.rate});
  }
  return RateSchedule(std::move(moved));
}

}  // namespace lsm::core
