// Ideal smoothing (paper, Section 3.2): every picture of a pattern is sent
// at the pattern's average rate (S_i + ... + S_{i+N-1}) / (N tau). This
// requires all N pictures of the pattern to have arrived before the first
// may be transmitted, so delays are large and have no a-priori bound —
// ideal smoothing is the reference the basic algorithm is measured against
// (the R(t) of Figures 4 and Eq. 16), not a deployable scheme.
#pragma once

#include "core/schedule.h"
#include "core/smoother.h"

namespace lsm::core {

/// Runs ideal smoothing over `trace`. A trailing partial pattern is averaged
/// over its own length. The returned result has params.K = N (all sizes of a
/// pattern known before sending), params.H = N, and params.D set to the
/// observed maximum delay (ideal smoothing has no delay parameter).
SmoothingResult smooth_ideal(const lsm::trace::Trace& trace);

}  // namespace lsm::core
