#include "core/bounds_fold.h"

#include <algorithm>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "core/bounds.h"
#include "core/simd_dispatch.h"

namespace lsm::core::detail {

BoundsFoldResult fold_bounds_scalar(const double* sums, int n, int i,
                                    Seconds t_i,
                                    const SmootherParams& params) noexcept {
  // The paper's running intersection verbatim: one rounded quotient per
  // bound per step, folded sequentially. This is the tier every wider
  // fold must reproduce bit for bit.
  double pictures = static_cast<double>(i - 1);
  double deadline_index = static_cast<double>(params.K + i);
  Rate lower = 0.0;
  Rate upper = kUnbounded;
  for (int h = 0; h < n; ++h) {
    lower = std::max(lookahead_lower_bound_at(sums[h], pictures, t_i, params),
                     lower);
    upper = std::min(
        lookahead_upper_bound_at(sums[h], deadline_index, t_i, params), upper);
    pictures += 1.0;
    deadline_index += 1.0;
  }
  return {lower, upper};
}

#if defined(__SSE2__)
BoundsFoldResult fold_bounds_sse2(const double* sums, int n, int i,
                                  Seconds t_i,
                                  const SmootherParams& params) noexcept {
  const __m128d tau2 = _mm_set1_pd(params.tau);
  const __m128d t_i2 = _mm_set1_pd(t_i);
  // Lane offsets so den = idx * tau + offset - t_i evaluates lane 0 as
  // (i-1+h)*tau + D - t_i and lane 1 as (K+i+h)*tau + 0 - t_i; adding D
  // first is commutative and adding 0.0 to a positive value is exact, so
  // both lanes match the scalar expressions bit for bit.
  const __m128d d_offset = _mm_set_pd(0.0, params.D);
  const __m128d neg_high = _mm_set_pd(-0.0, 0.0);
  const __m128d invalid = _mm_set_pd(-kUnbounded, kUnbounded);
  const __m128d zero = _mm_setzero_pd();
  // One lookahead step: both bounds for window sum `s` at picture/deadline
  // indices `idx`, folded into the accumulator `run`.
  const auto lane = [&](double s, __m128d idx, __m128d& run) {
    const __m128d den =
        _mm_sub_pd(_mm_add_pd(_mm_mul_pd(idx, tau2), d_offset), t_i2);
    const __m128d v = _mm_xor_pd(_mm_div_pd(_mm_set1_pd(s), den), neg_high);
    const __m128d ok = _mm_cmpgt_pd(den, zero);
    run = _mm_max_pd(run,
                     _mm_or_pd(_mm_and_pd(ok, v), _mm_andnot_pd(ok, invalid)));
  };
  const __m128d two = _mm_set1_pd(2.0);
  // [i-1+h, K+i+h] as doubles, advanced by +2.0 per accumulator; integers
  // far below 2^53, so identical to the int conversions they replace.
  __m128d idx0 = _mm_set_pd(static_cast<double>(params.K + i),
                            static_cast<double>(i - 1));
  __m128d idx1 = _mm_add_pd(idx0, _mm_set1_pd(1.0));
  __m128d run0 = _mm_set_pd(-kUnbounded, 0.0);  // [lower max, -upper min]
  __m128d run1 = run0;
  int h = 0;
  for (; h + 1 < n; h += 2) {
    lane(sums[h], idx0, run0);
    idx0 = _mm_add_pd(idx0, two);
    lane(sums[h + 1], idx1, run1);
    idx1 = _mm_add_pd(idx1, two);
  }
  if (h < n) {
    lane(sums[h], idx0, run0);
  }
  alignas(16) double folded[2];
  _mm_store_pd(folded, _mm_max_pd(run0, run1));
  return {folded[0], -folded[1]};
}
#else
BoundsFoldResult fold_bounds_sse2(const double* sums, int n, int i,
                                  Seconds t_i,
                                  const SmootherParams& params) noexcept {
  return fold_bounds_scalar(sums, n, i, t_i, params);
}
#endif

BoundsFoldResult fold_bounds(const double* sums, int n, int i, Seconds t_i,
                             const SmootherParams& params) noexcept {
  switch (simd::active_simd_level()) {
    case simd::SimdLevel::kScalar:
      return fold_bounds_scalar(sums, n, i, t_i, params);
    case simd::SimdLevel::kSse2:
      return fold_bounds_sse2(sums, n, i, t_i, params);
    case simd::SimdLevel::kAvx2:
#if defined(LSM_CORE_HAVE_AVX2)
      return fold_bounds_avx2(sums, n, i, t_i, params);
#else
      return fold_bounds_sse2(sums, n, i, t_i, params);
#endif
    case simd::SimdLevel::kAvx512:
#if defined(LSM_CORE_HAVE_AVX512)
      return fold_bounds_avx512(sums, n, i, t_i, params);
#elif defined(LSM_CORE_HAVE_AVX2)
      return fold_bounds_avx2(sums, n, i, t_i, params);
#else
      return fold_bounds_sse2(sums, n, i, t_i, params);
#endif
  }
  return fold_bounds_scalar(sums, n, i, t_i, params);
}

}  // namespace lsm::core::detail
