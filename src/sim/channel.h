// Seeded Markov block-fading channel model (Gilbert–Elliott and general
// N-state chains).
//
// The paper assumes the network honors any granted rate in [r^L, r^U];
// real wireless channels fade in correlated bursts. The standard model
// (PAPERS.md "Throughput and Delay Analysis in Video Streaming over
// Block-Fading Channels") divides time into fixed-length blocks and runs a
// discrete-time Markov chain over channel states, each scaling the granted
// rate by a factor in (0, 1] — the two-state instance with a Good and a
// Bad state is the classic Gilbert–Elliott channel.
//
// Like sim::FaultPlan, the realization is *pre-materialized*: every state
// sojourn over the horizon is drawn up front from one sim::Rng stream, so
// a run against a ChannelPlan is bit-reproducible per seed, and consumers
// only query. The spec carries the *analytic* model — stationary
// distribution, mean sojourn times, mean rate factor — against which the
// statistical property suite checks the empirical realization. A plan
// whose realization never leaves factor-1 states collapses to the empty
// (ideal) plan, which is the zero-intensity differential identity: an
// ideal ChannelPlan leaves run_faulted_pipeline() bitwise equal to
// run_live_pipeline().
//
// Composition with FaultPlan fades follows the fade rule: the effective
// throughput factor at time t is min(fade_factor_at(t), factor_at(t)).
#pragma once

#include <cstdint>
#include <vector>

namespace lsm::sim {

/// Generation recipe for a block-fading channel realization: an N-state
/// discrete-time Markov chain stepped once per block.
struct MarkovChannelSpec {
  double horizon = 10.0;  ///< seconds of simulated time covered (> 0)
  double block = 0.02;    ///< block (coherence-time) length, seconds (> 0)
  /// Scales the off-diagonal transition probabilities: P'(i,j) =
  /// intensity * P(i,j) for i != j, diagonal absorbing the remainder.
  /// 0 pins the chain to its initial state — when that state has factor
  /// 1, the generated plan is empty (the differential identity case);
  /// values > 1 sharpen fading as long as every row stays stochastic
  /// (validate() throws otherwise).
  double intensity = 1.0;
  std::uint64_t seed = 1;  ///< deterministic stream selector
  int initial_state = 0;   ///< chain state at t = 0

  /// Per-state throughput factors in (0, 1]; factors.size() is the state
  /// count N (>= 1). State 0 is conventionally the best state.
  std::vector<double> factors{1.0};

  /// Row-stochastic N x N per-block transition matrix (rows sum to 1
  /// within 1e-9; entries in [0, 1]).
  std::vector<std::vector<double>> transition{{1.0}};

  /// The classic two-state Gilbert–Elliott channel: Good (factor 1) and
  /// Bad (factor `bad_factor`), with per-block transition probabilities
  /// p = P(Good -> Bad) and r = P(Bad -> Good).
  static MarkovChannelSpec gilbert_elliott(double p, double r,
                                           double bad_factor);

  int state_count() const noexcept { return static_cast<int>(factors.size()); }

  /// Throws std::invalid_argument on non-finite, out-of-range, or
  /// non-stochastic fields (including an intensity that would push any
  /// scaled row out of stochasticity).
  void validate() const;

  /// Analytic stationary distribution pi of the *intensity-scaled* chain
  /// (pi P = pi, sum pi = 1), by direct elimination. For a reducible
  /// chain this is the stationary vector the elimination selects for the
  /// recurrent class reachable per the matrix structure; the spec suites
  /// use irreducible chains. Throws via validate().
  std::vector<double> stationary() const;

  /// Analytic mean sojourn time in `state`, seconds: block / (1 - P'(s,s))
  /// for the intensity-scaled chain; +infinity for an absorbing state.
  /// Throws std::out_of_range on a bad index, std::invalid_argument via
  /// validate().
  double mean_sojourn(int state) const;

  /// Analytic long-run mean throughput factor: sum_i pi_i * factor_i.
  double mean_factor() const;
};

/// One maximal sojourn: the chain sits in `state` over [start, start +
/// duration) — half-open, like FaultEvent windows. Consecutive segments of
/// a plan are contiguous and alternate state.
struct ChannelSegment {
  double start = 0.0;
  double duration = 0.0;
  int state = 0;
  double factor = 1.0;  ///< throughput factor of `state`, in (0, 1]

  double end() const noexcept { return start + duration; }
};

/// An immutable, queryable block-fading realization. Default-constructed
/// plans are empty — the ideal channel (factor 1 everywhere). Outside the
/// covered horizon the channel is ideal by definition.
class ChannelPlan {
 public:
  ChannelPlan() = default;

  /// Adopts explicit segments (the unit-test constructor). Segments must
  /// be contiguous from start 0, with positive durations and factors in
  /// (0, 1]; throws std::invalid_argument otherwise. A segment list whose
  /// factors are all exactly 1 collapses to the empty plan.
  explicit ChannelPlan(std::vector<ChannelSegment> segments);

  /// Draws a realization from `spec` using sim::Rng — identical spec
  /// (including seed) yields an identical plan on every platform.
  /// Realizations that never leave factor-1 states return empty().
  static ChannelPlan generate(const MarkovChannelSpec& spec);

  const std::vector<ChannelSegment>& segments() const noexcept {
    return segments_;
  }
  bool empty() const noexcept { return segments_.empty(); }

  /// End of the covered horizon (0 for the empty plan); the channel is
  /// ideal from there on.
  double horizon() const noexcept {
    return segments_.empty() ? 0.0 : segments_.back().end();
  }

  /// Throughput factor at time t: the covering segment's factor, 1
  /// outside [0, horizon()). Segment windows are half-open [start, end).
  double factor_at(double t) const noexcept;

  /// State index at time t, -1 outside the covered horizon.
  int state_at(double t) const noexcept;

  /// Sorted unique instants strictly inside (a, b) where factor_at()
  /// changes — the breakpoints a drain integration must honor (the
  /// horizon edge is included when the last segment's factor is not 1).
  /// Degenerate ranges (a >= b) yield no breakpoints.
  std::vector<double> factor_breakpoints(double a, double b) const;

  /// Number of state *transitions* in the realization (segment count - 1,
  /// 0 for empty plans).
  int transition_count() const noexcept {
    return segments_.empty() ? 0 : static_cast<int>(segments_.size()) - 1;
  }

  /// Total time spent in `state` across the realization, seconds.
  double occupancy(int state) const noexcept;

 private:
  std::vector<ChannelSegment> segments_;  ///< contiguous, start 0
};

}  // namespace lsm::sim
