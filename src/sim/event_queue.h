// Minimal discrete-event simulation kernel.
//
// Events are closures ordered by (time, insertion sequence); ties in time are
// broken FIFO so simulations are deterministic. The cell-level multiplexer in
// lsm::net and the live-pipeline example are built on this kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lsm::sim {

/// Discrete-event queue with a monotonically advancing clock.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulation time (seconds). Starts at 0.
  double now() const noexcept { return now_; }

  /// Number of events not yet dispatched.
  std::size_t pending() const noexcept { return heap_.size(); }

  /// Schedules `action` at absolute time `when`. `when` must not be in the
  /// past (>= now()); scheduling "now" is allowed and runs after the current
  /// event returns.
  void schedule_at(double when, Action action);

  /// Schedules `action` `delay` seconds from now. Requires delay >= 0.
  void schedule_in(double delay, Action action);

  /// Dispatches the single earliest event. Returns false if the queue is
  /// empty.
  bool step();

  /// Runs until the queue is empty or `time_limit` is reached (events at
  /// exactly time_limit are still dispatched). Returns number of events run.
  std::size_t run_until(double time_limit);

  /// Runs until the queue is empty. Returns number of events dispatched.
  std::size_t run();

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace lsm::sim
