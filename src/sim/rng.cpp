#include "sim/rng.h"

#include <cassert>
#include <cmath>

namespace lsm::sim {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro must not be seeded with the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is nudged away from zero so log() is finite.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = radius * std::sin(kTwoPi * u2);
  has_cached_normal_ = true;
  return radius * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) noexcept {
  return uniform() < p;
}

Rng Rng::split() noexcept {
  return Rng{next_u64()};
}

}  // namespace lsm::sim
