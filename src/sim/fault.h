// Deterministic fault injection for the transport pipeline.
//
// The paper's guarantees hold on an ideal channel; a production deployment
// sees denied reservations, fading channels, bursty loss, and encoder
// stalls. A FaultPlan is a *pre-materialized*, seedable schedule of such
// faults: every event (class, onset, duration, magnitude) is drawn up
// front from sim::Rng, so a run against a plan is bit-reproducible — the
// property the fault/property test suites and the differential
// zero-intensity gate are built on. Consumers (net/transport.h faulted
// pipeline, net/recovery.h reservation client) only *query* the plan;
// they never draw randomness of their own.
#pragma once

#include <cstdint>
#include <vector>

namespace lsm::sim {

/// The four injectable fault classes.
enum class FaultClass {
  kChannelFade,          ///< channel throughput drops to a fraction
  kBurstLoss,            ///< picture bits are lost and retransmitted
  kEncoderStall,         ///< picture arrivals are delayed
  kRenegotiationDenial,  ///< rate renegotiation requests are refused
};

/// One fault window, active over the half-open interval [start, end()):
/// a query at exactly `start` sees the fault, a query at exactly `end()`
/// does not. Two windows sharing an endpoint therefore hand off without
/// overlap or gap — the edge-coincidence regression tests pin this.
/// `magnitude` is class-specific:
///   kChannelFade         fraction of the granted rate that still gets
///                        through, in (0, 1]; overlapping fades compose by
///                        minimum.
///   kBurstLoss           fraction of a picture's bits lost per attempt,
///                        in [0, 0.9]; geometric retransmission inflates
///                        the bits on the wire by 1/(1 - magnitude).
///   kEncoderStall        seconds added to the arrival instant of pictures
///                        whose nominal arrival falls in the window;
///                        overlapping stalls compose by maximum.
///   kRenegotiationDenial unused (0); requests inside the window are
///                        denied.
struct FaultEvent {
  FaultClass cls = FaultClass::kChannelFade;
  double start = 0.0;     ///< onset, seconds of simulated time (>= 0)
  double duration = 0.0;  ///< window length, seconds (> 0)
  double magnitude = 0.0;

  double end() const noexcept { return start + duration; }
};

/// Generation recipe: per-class mean event counts over `horizon` at
/// intensity 1, scaled linearly by `intensity`. intensity == 0 produces an
/// empty plan — the differential-test identity case.
struct FaultSpec {
  double horizon = 10.0;    ///< seconds of simulated time covered (> 0)
  double intensity = 1.0;   ///< event-density scale (>= 0)
  std::uint64_t seed = 1;   ///< deterministic stream selector

  double fade_rate = 2.0;          ///< mean fades per horizon at intensity 1
  double fade_mean_duration = 0.3; ///< seconds
  double fade_min_factor = 0.25;   ///< magnitudes drawn in [min_factor, 1)

  double loss_rate = 2.0;
  double loss_mean_duration = 0.2;
  double loss_max_fraction = 0.3;  ///< magnitudes drawn in [0, max_fraction]

  double stall_rate = 1.0;
  double stall_mean_duration = 0.2;
  double stall_max_delay = 0.08;   ///< magnitudes drawn in (0, max_delay]

  double denial_rate = 1.0;
  double denial_mean_duration = 0.5;

  /// Throws std::invalid_argument on non-finite or out-of-range fields.
  void validate() const;
};

/// An immutable, queryable schedule of fault windows. Default-constructed
/// plans are empty (the ideal channel).
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Adopts explicit events (the unit-test constructor). Sorts by onset;
  /// throws std::invalid_argument on invalid events (negative start,
  /// non-positive duration, magnitude outside the class's documented
  /// range, non-finite fields).
  explicit FaultPlan(std::vector<FaultEvent> events);

  /// Draws a plan from `spec` using sim::Rng — identical spec (including
  /// seed) yields an identical plan on every platform.
  static FaultPlan generate(const FaultSpec& spec);

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }

  /// Number of events of one class.
  int count(FaultClass cls) const noexcept;

  /// Channel throughput factor at time t: min of active fade magnitudes,
  /// 1 when no fade is active. Windows are half-open [start, end()): at a
  /// shared endpoint exactly one window is active, so the factor is the
  /// incoming window's — never the min of both.
  double fade_factor_at(double t) const noexcept;

  /// Loss fraction at time t: max of active burst-loss magnitudes, 0 when
  /// none is active. Half-open [start, end()) windows.
  double loss_fraction_at(double t) const noexcept;

  /// Arrival delay at time t: max of active stall magnitudes, 0 when none
  /// is active. Half-open [start, end()) windows.
  double stall_delay_at(double t) const noexcept;

  /// True when a renegotiation request at time t would be denied.
  /// Half-open [start, end()) windows: a request at exactly end() goes
  /// through.
  bool denial_active(double t) const noexcept;

  /// Sorted unique fade-window edges strictly inside the open interval
  /// (a, b) — the breakpoints a drain integration must honor. Edges at
  /// exactly a or b are excluded by design: fade_factor_at(a) already
  /// reflects a window opening at a (half-open semantics), and an edge at
  /// b belongs to the next drain segment. An edge shared by two fades
  /// appears once. Degenerate ranges (a >= b) yield no breakpoints.
  std::vector<double> fade_breakpoints(double a, double b) const;

 private:
  std::vector<FaultEvent> events_;  ///< sorted by (start, insertion order)
};

}  // namespace lsm::sim
