#include "sim/fault.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.h"

namespace lsm::sim {

namespace {

bool finite_nonneg(double v) noexcept { return std::isfinite(v) && v >= 0.0; }

void validate_event(const FaultEvent& event) {
  if (!finite_nonneg(event.start) || !std::isfinite(event.duration) ||
      event.duration <= 0.0 || !std::isfinite(event.magnitude)) {
    throw std::invalid_argument("FaultPlan: malformed event");
  }
  switch (event.cls) {
    case FaultClass::kChannelFade:
      if (event.magnitude <= 0.0 || event.magnitude > 1.0) {
        throw std::invalid_argument("FaultPlan: fade factor outside (0, 1]");
      }
      break;
    case FaultClass::kBurstLoss:
      if (event.magnitude < 0.0 || event.magnitude > 0.9) {
        throw std::invalid_argument(
            "FaultPlan: loss fraction outside [0, 0.9]");
      }
      break;
    case FaultClass::kEncoderStall:
      if (event.magnitude <= 0.0) {
        throw std::invalid_argument("FaultPlan: non-positive stall delay");
      }
      break;
    case FaultClass::kRenegotiationDenial:
      break;
  }
}

bool active_at(const FaultEvent& event, double t) noexcept {
  return event.start <= t && t < event.end();
}

}  // namespace

void FaultSpec::validate() const {
  if (!(horizon > 0.0) || !std::isfinite(horizon) ||
      !finite_nonneg(intensity)) {
    throw std::invalid_argument("FaultSpec: bad horizon/intensity");
  }
  if (!finite_nonneg(fade_rate) || !finite_nonneg(loss_rate) ||
      !finite_nonneg(stall_rate) || !finite_nonneg(denial_rate)) {
    throw std::invalid_argument("FaultSpec: negative class rate");
  }
  if (!(fade_mean_duration > 0.0) || !(loss_mean_duration > 0.0) ||
      !(stall_mean_duration > 0.0) || !(denial_mean_duration > 0.0)) {
    throw std::invalid_argument("FaultSpec: non-positive mean duration");
  }
  if (fade_min_factor <= 0.0 || fade_min_factor > 1.0 ||
      loss_max_fraction < 0.0 || loss_max_fraction > 0.9 ||
      !(stall_max_delay >= 0.0)) {
    throw std::invalid_argument("FaultSpec: magnitude range out of bounds");
  }
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  for (const FaultEvent& event : events_) validate_event(event);
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.start < b.start;
                   });
}

FaultPlan FaultPlan::generate(const FaultSpec& spec) {
  spec.validate();
  Rng rng(spec.seed);
  std::vector<FaultEvent> events;

  // One class at a time, in a fixed order, so the draw sequence (and hence
  // the plan) is a pure function of the spec.
  const auto draw_class = [&](FaultClass cls, double rate_per_horizon,
                              double mean_duration, auto&& draw_magnitude) {
    const double events_per_second =
        rate_per_horizon * spec.intensity / spec.horizon;
    if (events_per_second <= 0.0) return;
    double t = 0.0;
    for (;;) {
      t += rng.exponential(events_per_second);
      if (t >= spec.horizon) break;
      FaultEvent event;
      event.cls = cls;
      event.start = t;
      event.duration = rng.exponential(1.0 / mean_duration);
      event.magnitude = draw_magnitude();
      events.push_back(event);
    }
  };

  draw_class(FaultClass::kChannelFade, spec.fade_rate,
             spec.fade_mean_duration,
             [&] { return rng.uniform(spec.fade_min_factor, 1.0); });
  draw_class(FaultClass::kBurstLoss, spec.loss_rate, spec.loss_mean_duration,
             [&] { return rng.uniform(0.0, spec.loss_max_fraction); });
  if (spec.stall_max_delay > 0.0) {  // a zero cap disables the class
    draw_class(FaultClass::kEncoderStall, spec.stall_rate,
               spec.stall_mean_duration, [&] {
                 // Stall delays must be strictly positive: flip [0, max)
                 // to (0, max].
                 return spec.stall_max_delay -
                        rng.uniform(0.0, spec.stall_max_delay);
               });
  }
  draw_class(FaultClass::kRenegotiationDenial, spec.denial_rate,
             spec.denial_mean_duration, [] { return 0.0; });
  return FaultPlan(std::move(events));
}

int FaultPlan::count(FaultClass cls) const noexcept {
  int n = 0;
  for (const FaultEvent& event : events_) n += event.cls == cls ? 1 : 0;
  return n;
}

double FaultPlan::fade_factor_at(double t) const noexcept {
  double factor = 1.0;
  for (const FaultEvent& event : events_) {
    if (event.cls == FaultClass::kChannelFade && active_at(event, t)) {
      factor = std::min(factor, event.magnitude);
    }
  }
  return factor;
}

double FaultPlan::loss_fraction_at(double t) const noexcept {
  double fraction = 0.0;
  for (const FaultEvent& event : events_) {
    if (event.cls == FaultClass::kBurstLoss && active_at(event, t)) {
      fraction = std::max(fraction, event.magnitude);
    }
  }
  return fraction;
}

double FaultPlan::stall_delay_at(double t) const noexcept {
  double delay = 0.0;
  for (const FaultEvent& event : events_) {
    if (event.cls == FaultClass::kEncoderStall && active_at(event, t)) {
      delay = std::max(delay, event.magnitude);
    }
  }
  return delay;
}

bool FaultPlan::denial_active(double t) const noexcept {
  for (const FaultEvent& event : events_) {
    if (event.cls == FaultClass::kRenegotiationDenial &&
        active_at(event, t)) {
      return true;
    }
  }
  return false;
}

std::vector<double> FaultPlan::fade_breakpoints(double a, double b) const {
  std::vector<double> edges;
  if (!(a < b)) return edges;  // degenerate or reversed range
  for (const FaultEvent& event : events_) {
    if (event.cls != FaultClass::kChannelFade) continue;
    if (event.start > a && event.start < b) edges.push_back(event.start);
    if (event.end() > a && event.end() < b) edges.push_back(event.end());
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace lsm::sim
