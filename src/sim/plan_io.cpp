#include "sim/plan_io.h"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace lsm::sim {

namespace {

constexpr std::string_view kMagic = "lsmplan";
constexpr std::string_view kVersion = "v1";

std::string hex_double(double value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(
                    std::bit_cast<std::uint64_t>(value)));
  return std::string(buffer);
}

double parse_hex_double(const std::string& token) {
  if (token.size() != 16 ||
      token.find_first_not_of("0123456789abcdef") != std::string::npos) {
    throw std::invalid_argument("plan_io: malformed double token");
  }
  return std::bit_cast<double>(
      static_cast<std::uint64_t>(std::stoull(token, nullptr, 16)));
}

const char* fault_class_name(FaultClass cls) {
  switch (cls) {
    case FaultClass::kChannelFade:
      return "fade";
    case FaultClass::kBurstLoss:
      return "loss";
    case FaultClass::kEncoderStall:
      return "stall";
    case FaultClass::kRenegotiationDenial:
      return "denial";
  }
  return "unknown";
}

FaultClass parse_fault_class(const std::string& name) {
  if (name == "fade") return FaultClass::kChannelFade;
  if (name == "loss") return FaultClass::kBurstLoss;
  if (name == "stall") return FaultClass::kEncoderStall;
  if (name == "denial") return FaultClass::kRenegotiationDenial;
  throw std::invalid_argument("plan_io: unknown fault class");
}

/// Consumes and checks the "lsmplan v1 <kind>" header; returns the body
/// line stream.
std::istringstream open_body(std::string_view text, std::string_view kind) {
  std::istringstream lines{std::string(text)};
  std::string magic;
  std::string version;
  std::string found_kind;
  if (!(lines >> magic >> version >> found_kind) || magic != kMagic ||
      version != kVersion || found_kind != kind) {
    throw std::invalid_argument("plan_io: bad header");
  }
  return lines;
}

}  // namespace

std::string serialize_fault_plan(const FaultPlan& plan) {
  std::string out;
  out += kMagic;
  out += ' ';
  out += kVersion;
  out += " fault\n";
  for (const FaultEvent& event : plan.events()) {
    out += "event ";
    out += fault_class_name(event.cls);
    out += ' ';
    out += hex_double(event.start);
    out += ' ';
    out += hex_double(event.duration);
    out += ' ';
    out += hex_double(event.magnitude);
    out += '\n';
  }
  out += "end\n";
  return out;
}

std::string serialize_channel_plan(const ChannelPlan& plan) {
  std::string out;
  out += kMagic;
  out += ' ';
  out += kVersion;
  out += " channel\n";
  for (const ChannelSegment& segment : plan.segments()) {
    out += "segment ";
    out += std::to_string(segment.state);
    out += ' ';
    out += hex_double(segment.start);
    out += ' ';
    out += hex_double(segment.duration);
    out += ' ';
    out += hex_double(segment.factor);
    out += '\n';
  }
  out += "end\n";
  return out;
}

FaultPlan parse_fault_plan(std::string_view text) {
  std::istringstream lines = open_body(text, "fault");
  std::vector<FaultEvent> events;
  std::string keyword;
  while (lines >> keyword) {
    if (keyword == "end") return FaultPlan(std::move(events));
    if (keyword != "event") {
      throw std::invalid_argument("plan_io: unexpected fault record");
    }
    std::string cls;
    std::string start;
    std::string duration;
    std::string magnitude;
    if (!(lines >> cls >> start >> duration >> magnitude)) {
      throw std::invalid_argument("plan_io: truncated fault record");
    }
    FaultEvent event;
    event.cls = parse_fault_class(cls);
    event.start = parse_hex_double(start);
    event.duration = parse_hex_double(duration);
    event.magnitude = parse_hex_double(magnitude);
    events.push_back(event);
  }
  throw std::invalid_argument("plan_io: missing end marker");
}

ChannelPlan parse_channel_plan(std::string_view text) {
  std::istringstream lines = open_body(text, "channel");
  std::vector<ChannelSegment> segments;
  std::string keyword;
  while (lines >> keyword) {
    if (keyword == "end") return ChannelPlan(std::move(segments));
    if (keyword != "segment") {
      throw std::invalid_argument("plan_io: unexpected channel record");
    }
    std::string state;
    std::string start;
    std::string duration;
    std::string factor;
    if (!(lines >> state >> start >> duration >> factor)) {
      throw std::invalid_argument("plan_io: truncated channel record");
    }
    ChannelSegment segment;
    segment.state = std::stoi(state);
    segment.start = parse_hex_double(start);
    segment.duration = parse_hex_double(duration);
    segment.factor = parse_hex_double(factor);
    segments.push_back(segment);
  }
  throw std::invalid_argument("plan_io: missing end marker");
}

}  // namespace lsm::sim
