#include "sim/channel.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sim/rng.h"

namespace lsm::sim {

namespace {

constexpr double kRowSumTolerance = 1e-9;

/// The intensity-scaled transition row: off-diagonal entries scale by
/// `intensity`, the diagonal absorbs the remainder. validate() guarantees
/// the result is still a probability row.
std::vector<double> scaled_row(const MarkovChannelSpec& spec, int row) {
  const std::vector<double>& p = spec.transition[static_cast<std::size_t>(row)];
  std::vector<double> out(p.size());
  double off_diagonal = 0.0;
  for (std::size_t j = 0; j < p.size(); ++j) {
    if (static_cast<int>(j) == row) continue;
    out[j] = p[j] * spec.intensity;
    off_diagonal += out[j];
  }
  out[static_cast<std::size_t>(row)] = 1.0 - off_diagonal;
  return out;
}

}  // namespace

MarkovChannelSpec MarkovChannelSpec::gilbert_elliott(double p, double r,
                                                     double bad_factor) {
  MarkovChannelSpec spec;
  spec.factors = {1.0, bad_factor};
  spec.transition = {{1.0 - p, p}, {r, 1.0 - r}};
  spec.validate();
  return spec;
}

void MarkovChannelSpec::validate() const {
  if (!(horizon > 0.0) || !std::isfinite(horizon) || !(block > 0.0) ||
      !std::isfinite(block)) {
    throw std::invalid_argument("MarkovChannelSpec: bad horizon/block");
  }
  if (!std::isfinite(intensity) || intensity < 0.0) {
    throw std::invalid_argument("MarkovChannelSpec: bad intensity");
  }
  const int n = state_count();
  if (n < 1) {
    throw std::invalid_argument("MarkovChannelSpec: no states");
  }
  if (initial_state < 0 || initial_state >= n) {
    throw std::invalid_argument(
        "MarkovChannelSpec: initial state out of range");
  }
  for (const double factor : factors) {
    if (!std::isfinite(factor) || factor <= 0.0 || factor > 1.0) {
      throw std::invalid_argument(
          "MarkovChannelSpec: state factor outside (0, 1]");
    }
  }
  if (static_cast<int>(transition.size()) != n) {
    throw std::invalid_argument("MarkovChannelSpec: transition matrix not NxN");
  }
  for (int i = 0; i < n; ++i) {
    const std::vector<double>& row = transition[static_cast<std::size_t>(i)];
    if (static_cast<int>(row.size()) != n) {
      throw std::invalid_argument(
          "MarkovChannelSpec: transition matrix not NxN");
    }
    double sum = 0.0;
    for (const double p : row) {
      if (!std::isfinite(p) || p < 0.0 || p > 1.0) {
        throw std::invalid_argument(
            "MarkovChannelSpec: transition probability outside [0, 1]");
      }
      sum += p;
    }
    if (std::abs(sum - 1.0) > kRowSumTolerance) {
      throw std::invalid_argument(
          "MarkovChannelSpec: transition row does not sum to 1");
    }
    // The intensity-scaled row must stay stochastic: the diagonal absorbs
    // 1 - intensity * (off-diagonal mass) and may not go negative.
    const double off = sum - row[static_cast<std::size_t>(i)];
    if (off * intensity > 1.0 + kRowSumTolerance) {
      throw std::invalid_argument(
          "MarkovChannelSpec: intensity pushes a transition row out of "
          "stochasticity");
    }
  }
}

std::vector<double> MarkovChannelSpec::stationary() const {
  validate();
  const int n = state_count();
  // Solve pi (P - I) = 0 with the normalization sum pi = 1: build the
  // transpose system A x = b where A = (P - I)^T with its last row
  // replaced by ones, b = (0, ..., 0, 1). Plain Gaussian elimination with
  // partial pivoting — N is small by construction.
  std::vector<std::vector<double>> a(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n) + 1, 0.0));
  for (int i = 0; i < n; ++i) {
    const std::vector<double> row = scaled_row(*this, i);
    for (int j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          row[static_cast<std::size_t>(j)] - (i == j ? 1.0 : 0.0);
    }
  }
  // Normalization row: sum pi = 1 (coefficients all 1, rhs 1).
  for (int j = 0; j <= n; ++j) {
    a[static_cast<std::size_t>(n) - 1][static_cast<std::size_t>(j)] = 1.0;
  }
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int row = col + 1; row < n; ++row) {
      if (std::abs(a[static_cast<std::size_t>(row)]
                    [static_cast<std::size_t>(col)]) >
          std::abs(a[static_cast<std::size_t>(pivot)]
                    [static_cast<std::size_t>(col)])) {
        pivot = row;
      }
    }
    std::swap(a[static_cast<std::size_t>(col)],
              a[static_cast<std::size_t>(pivot)]);
    const double lead =
        a[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
    if (std::abs(lead) < 1e-14) {
      throw std::invalid_argument(
          "MarkovChannelSpec: singular chain, no unique stationary "
          "distribution");
    }
    for (int row = 0; row < n; ++row) {
      if (row == col) continue;
      const double factor = a[static_cast<std::size_t>(row)]
                             [static_cast<std::size_t>(col)] /
                            lead;
      for (int j = col; j <= n; ++j) {
        a[static_cast<std::size_t>(row)][static_cast<std::size_t>(j)] -=
            factor *
            a[static_cast<std::size_t>(col)][static_cast<std::size_t>(j)];
      }
    }
  }
  std::vector<double> pi(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pi[static_cast<std::size_t>(i)] =
        a[static_cast<std::size_t>(i)][static_cast<std::size_t>(n)] /
        a[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    // Clamp elimination noise; the suite checks the distribution sums to 1.
    pi[static_cast<std::size_t>(i)] =
        std::max(0.0, pi[static_cast<std::size_t>(i)]);
  }
  return pi;
}

double MarkovChannelSpec::mean_sojourn(int state) const {
  validate();
  if (state < 0 || state >= state_count()) {
    throw std::out_of_range("MarkovChannelSpec: sojourn state out of range");
  }
  const std::vector<double> row = scaled_row(*this, state);
  const double stay = row[static_cast<std::size_t>(state)];
  if (stay >= 1.0) return std::numeric_limits<double>::infinity();
  // Geometric sojourn in blocks with success probability (1 - stay):
  // mean block count 1 / (1 - stay).
  return block / (1.0 - stay);
}

double MarkovChannelSpec::mean_factor() const {
  const std::vector<double> pi = stationary();
  double mean = 0.0;
  for (int i = 0; i < state_count(); ++i) {
    mean +=
        pi[static_cast<std::size_t>(i)] * factors[static_cast<std::size_t>(i)];
  }
  return mean;
}

ChannelPlan::ChannelPlan(std::vector<ChannelSegment> segments)
    : segments_(std::move(segments)) {
  double expected_start = 0.0;
  bool any_fading = false;
  for (const ChannelSegment& segment : segments_) {
    if (!std::isfinite(segment.start) || !std::isfinite(segment.duration) ||
        segment.duration <= 0.0 || segment.start != expected_start ||
        !std::isfinite(segment.factor) || segment.factor <= 0.0 ||
        segment.factor > 1.0 || segment.state < 0) {
      throw std::invalid_argument("ChannelPlan: malformed segment list");
    }
    expected_start = segment.end();
    any_fading = any_fading || segment.factor < 1.0;
  }
  // An all-good realization *is* the ideal channel: collapse it so the
  // empty() fast paths (and the zero-intensity differential identity)
  // apply to it too.
  if (!any_fading) segments_.clear();
}

ChannelPlan ChannelPlan::generate(const MarkovChannelSpec& spec) {
  spec.validate();
  Rng rng(spec.seed);
  // Pre-resolve the scaled rows once; the chain steps once per block.
  std::vector<std::vector<double>> rows;
  rows.reserve(static_cast<std::size_t>(spec.state_count()));
  for (int i = 0; i < spec.state_count(); ++i) {
    rows.push_back(scaled_row(spec, i));
  }

  std::vector<ChannelSegment> segments;
  int state = spec.initial_state;
  // Two clocks: `t` steps block by block and drives the chain; `cursor`
  // accumulates the emitted durations, so each segment's start is exactly
  // the previous segment's end() — `start + duration` need not reproduce
  // a block-stepped sum bitwise, and the plan constructor checks
  // contiguity exactly.
  double t = 0.0;
  double cursor = 0.0;
  while (t < spec.horizon) {
    const double segment_start = t;
    // Extend the sojourn block by block while the chain stays put. The
    // uniform draw happens once per block regardless of outcome, so the
    // draw sequence is a pure function of the spec.
    int current = state;
    while (t < spec.horizon && state == current) {
      t += spec.block;
      const double u = rng.uniform();
      const std::vector<double>& row =
          rows[static_cast<std::size_t>(current)];
      double cumulative = 0.0;
      int next = current;
      for (int j = 0; j < spec.state_count(); ++j) {
        cumulative += row[static_cast<std::size_t>(j)];
        if (u < cumulative) {
          next = j;
          break;
        }
      }
      state = next;
    }
    ChannelSegment segment;
    segment.start = cursor;
    double duration = std::min(t, spec.horizon) - segment_start;
    if (cursor + duration > spec.horizon) duration = spec.horizon - cursor;
    if (duration <= 0.0) break;  // clock drift exhausted the horizon
    segment.duration = duration;
    segment.state = current;
    segment.factor = spec.factors[static_cast<std::size_t>(current)];
    segments.push_back(segment);
    cursor += duration;
  }
  return ChannelPlan(std::move(segments));
}

double ChannelPlan::factor_at(double t) const noexcept {
  for (const ChannelSegment& segment : segments_) {
    if (segment.start <= t && t < segment.end()) return segment.factor;
  }
  return 1.0;
}

int ChannelPlan::state_at(double t) const noexcept {
  for (const ChannelSegment& segment : segments_) {
    if (segment.start <= t && t < segment.end()) return segment.state;
  }
  return -1;
}

std::vector<double> ChannelPlan::factor_breakpoints(double a, double b) const {
  std::vector<double> edges;
  if (!(a < b)) return edges;
  double previous_factor = 1.0;  // the implicit ideal channel before t = 0
  for (const ChannelSegment& segment : segments_) {
    if (segment.factor != previous_factor && segment.start > a &&
        segment.start < b) {
      edges.push_back(segment.start);
    }
    previous_factor = segment.factor;
  }
  // The channel is ideal beyond the horizon; a fading final segment makes
  // that edge a real rate change.
  if (!segments_.empty() && previous_factor != 1.0) {
    const double edge = segments_.back().end();
    if (edge > a && edge < b) edges.push_back(edge);
  }
  return edges;
}

double ChannelPlan::occupancy(int state) const noexcept {
  double total = 0.0;
  for (const ChannelSegment& segment : segments_) {
    if (segment.state == state) total += segment.duration;
  }
  return total;
}

}  // namespace lsm::sim
