// Deterministic, platform-stable pseudo-random number generation.
//
// The standard library's distribution objects (std::normal_distribution and
// friends) are implementation-defined: the same seed produces different
// streams on different standard libraries. Trace synthesis must be bit-stable
// across platforms so that calibrated experiment workloads are reproducible,
// hence this module implements both the generator (xoshiro256**) and the
// distributions (inverse/Box-Muller style) from scratch.
#pragma once

#include <array>
#include <cstdint>

namespace lsm::sim {

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator (Blackman & Vigna). Small, fast, and high quality;
/// deterministic for a given seed on every platform.
class Rng {
 public:
  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Lognormal: exp(normal(mu, sigma)). mu/sigma are the log-space params.
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given rate (lambda). Requires rate > 0.
  double exponential(double rate) noexcept;

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) noexcept;

  /// Independent child generator; streams do not overlap in practice because
  /// the child is seeded from this generator's output.
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace lsm::sim
