// Byte-exact plan serialization for the golden-seed regression corpus.
//
// FaultPlan and ChannelPlan generation is a pure function of (spec, seed),
// and every downstream differential leans on that. The statistical suites
// catch gross drift, but a subtle RNG or event-ordering change can move a
// realization without moving its statistics. The corpus under tests/data/
// pins a handful of seeds as committed text dumps; the golden test
// regenerates each plan and compares the serialized form byte-for-byte,
// so drift shows up as a reviewable diff instead of a flaky statistic.
//
// Doubles are serialized as the 16-hex-digit IEEE-754 bit pattern — exact
// on every platform, immune to printf shortest-round-trip differences —
// with the format versioned in the header line ("lsmplan v1 <kind>").
#pragma once

#include <string>
#include <string_view>

#include "sim/channel.h"
#include "sim/fault.h"

namespace lsm::sim {

/// Canonical text form of a FaultPlan: header line, one "event <class>
/// <start> <duration> <magnitude>" line per event in plan order, "end".
std::string serialize_fault_plan(const FaultPlan& plan);

/// Canonical text form of a ChannelPlan: header line, one "segment
/// <state> <start> <duration> <factor>" line per segment, "end".
std::string serialize_channel_plan(const ChannelPlan& plan);

/// Parses serialize_fault_plan() output (round-trip exact). Throws
/// std::invalid_argument on malformed input, wrong kind, or an
/// unsupported version.
FaultPlan parse_fault_plan(std::string_view text);

/// Parses serialize_channel_plan() output (round-trip exact). Throws
/// std::invalid_argument on malformed input, wrong kind, or an
/// unsupported version.
ChannelPlan parse_channel_plan(std::string_view text);

}  // namespace lsm::sim
