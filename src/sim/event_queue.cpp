#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace lsm::sim {

void EventQueue::schedule_at(double when, Action action) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue::schedule_at: time in the past");
  }
  heap_.push(Entry{when, next_seq_++, std::move(action)});
}

void EventQueue::schedule_in(double delay, Action action) {
  if (delay < 0.0) {
    throw std::invalid_argument("EventQueue::schedule_in: negative delay");
  }
  schedule_at(now_ + delay, std::move(action));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // Copy out before pop so the action may schedule further events.
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.time;
  entry.action();
  return true;
}

std::size_t EventQueue::run_until(double time_limit) {
  std::size_t count = 0;
  while (!heap_.empty() && heap_.top().time <= time_limit) {
    step();
    ++count;
  }
  if (now_ < time_limit) now_ = time_limit;
  return count;
}

std::size_t EventQueue::run() {
  std::size_t count = 0;
  while (step()) ++count;
  return count;
}

}  // namespace lsm::sim
