// Dense slot allocator: the free-list behind slab-backed
// structure-of-arrays state (net/statmux.cpp's per-shard stream arena).
//
// acquire() hands out uint32 slots from a LIFO free-list, growing the
// dense range only when the free-list is empty; release() returns a slot
// for reuse. Because freed slots are recycled before the range grows, the
// live set stays packed into [0, high_water) — the property that makes a
// parallel-vector (SoA) layout worth having: a walk over the dense range
// is a linear, prefetch-friendly scan instead of a pointer chase through
// individually-allocated objects.
//
// The allocator itself holds no per-slot payload. Owners keep one vector
// per field, sized to high_water(), and index them by slot; `live()` and
// the owner's own liveness flags distinguish occupied from free slots
// during dense walks. LIFO reuse is deliberate: the most-recently-freed
// slot is the most likely to still be cache- and TLB-resident.
//
// Single-owner, no atomics; zero allocations once the free-list vector
// has seen its high-water capacity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsm::runtime {

class SlotAllocator {
 public:
  /// Pre-sizes the free-list so steady-state churn up to `expected` live
  /// slots never reallocates it.
  explicit SlotAllocator(std::size_t expected = 0) {
    free_.reserve(expected);
  }

  /// Returns a slot index < high_water(); reuses the most recently
  /// released slot when one exists, else extends the dense range.
  std::uint32_t acquire() {
    ++live_;
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    return high_water_++;
  }

  /// Returns `slot` to the free-list. The caller owns generation stamps /
  /// liveness flags; the allocator trusts it not to double-release.
  void release(std::uint32_t slot) {
    --live_;
    free_.push_back(slot);
  }

  /// One past the largest slot ever handed out — the size owners keep
  /// their parallel field vectors at.
  std::uint32_t high_water() const noexcept { return high_water_; }

  /// Currently-acquired slot count (<= high_water()).
  std::size_t live() const noexcept { return live_; }

  void reserve(std::size_t expected) { free_.reserve(expected); }

 private:
  std::vector<std::uint32_t> free_;
  std::uint32_t high_water_ = 0;
  std::size_t live_ = 0;
};

}  // namespace lsm::runtime
