// Lock-free per-worker performance counters for the batch runtime.
//
// Every pool worker owns one cache-line-aligned PerfCounters slot and
// updates it with plain stores — no atomics, no locks — which is safe
// because no other thread touches the slot while work is in flight, and
// ThreadPool::wait_idle() orders all slot writes before the aggregating
// read. Aggregation sums the slots into one report; to_json() serializes
// both the totals and the per-worker breakdown so scaling studies can see
// how evenly the shards landed.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace lsm::runtime {

/// Tallies for one worker (or one whole run, after aggregation).
struct alignas(64) PerfCounters {
  std::uint64_t streams = 0;       ///< smoothing runs completed
  std::uint64_t pictures = 0;      ///< pictures scheduled across those runs
  std::uint64_t rate_changes = 0;  ///< diagnostics with rate_changed
  std::uint64_t early_exits = 0;   ///< diagnostics with early_exit
  std::uint64_t wall_ns = 0;       ///< wall-clock ns executing batch shards
  std::uint64_t cpu_ns = 0;        ///< thread CPU ns executing batch shards

  PerfCounters& operator+=(const PerfCounters& other) noexcept;

  /// Mean wall ns per stream; 0 when no streams were recorded.
  double wall_ns_per_stream() const noexcept;
};

// Each slot must own exactly one cache line: two workers' counters sharing a
// line would false-share on every update, and a slot spilling onto a second
// line would pad the registry for nothing. Revisit the field list if either
// assert fires.
static_assert(alignof(PerfCounters) == 64,
              "PerfCounters slots must be cache-line aligned");
static_assert(sizeof(PerfCounters) == 64,
              "PerfCounters must fill exactly one cache line");

/// One counter slot per pool worker plus one trailing slot for work done on
/// non-pool threads (slot(-1)).
class PerfRegistry {
 public:
  /// `workers` slots for pool threads, one extra for outside callers.
  explicit PerfRegistry(int workers);

  /// Slot for pool-worker `index`, or the external slot when index == -1.
  PerfCounters& slot(int index);
  const PerfCounters& slot(int index) const;

  int worker_count() const noexcept { return workers_; }

  /// Sum of every slot. Call only after the producing tasks have been
  /// ordered before this thread (ThreadPool::wait_idle()).
  PerfCounters total() const noexcept;

  /// Zeroes every slot.
  void reset() noexcept;

  /// Report with totals, derived per-stream costs, and the per-worker
  /// breakdown, e.g.
  ///   {"streams": 8, "pictures": 2640, ..., "workers": [{...}, ...]}
  std::string to_json() const;

  /// Publishes the aggregated totals into `registry` as counters named
  /// `<prefix>.streams`, `<prefix>.pictures`, ... plus the
  /// `<prefix>.wall_ns_per_stream` gauge.
  void export_metrics(obs::Registry& registry, std::string_view prefix) const;

 private:
  int workers_;
  std::vector<PerfCounters> slots_;
};

/// Fixed-bucket histogram of recovery latencies (seconds). Bucket i counts
/// samples below 1 ms * 2^i; the last bucket is the overflow. Fixed bounds
/// keep merged histograms exact and the JSON shape stable.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 13;  ///< <1ms .. <4.096s, then overflow

  /// Records one sample. Negative or non-finite samples (NaN, ±inf) are
  /// clamped to 0 and tallied in clamped() so faulty inputs stay visible
  /// instead of silently landing in the first bucket.
  void add(double seconds) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t bucket(int index) const noexcept {
    return buckets_[static_cast<std::size_t>(index)];
  }
  double max_seconds() const noexcept { return max_seconds_; }
  std::uint64_t clamped() const noexcept { return clamped_; }

  LatencyHistogram& operator+=(const LatencyHistogram& other) noexcept;

  /// {"count": N, "clamped": M, "max_s": x, "buckets": [n0, n1, ...]}
  std::string to_json() const;

  /// Merges this histogram into the named HistogramMetric in `registry`.
  void export_metrics(obs::Registry& registry, std::string_view name) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t clamped_ = 0;
  double max_seconds_ = 0.0;
};

/// Degradation telemetry for one faulted pipeline run (or one aggregated
/// fleet, after +=). Split into plan-side "injected" counts — what the
/// FaultPlan scheduled — and pipeline-side "observed" effects, so tests
/// can check the two views against each other.
struct DegradationCounters {
  // Injected by the FaultPlan (bumped as each fault window opens) and the
  // block-fading ChannelPlan (one tick per state transition).
  std::uint64_t fades_injected = 0;
  std::uint64_t losses_injected = 0;
  std::uint64_t stalls_injected = 0;
  std::uint64_t denial_windows_injected = 0;
  std::uint64_t channel_transitions = 0;

  // Observed effects on pictures and reservations.
  std::uint64_t pictures_faded = 0;          ///< sends slowed by a fade
  std::uint64_t pictures_channel_faded = 0;  ///< sends slowed by the chain
  std::uint64_t outage_denials = 0;          ///< requests refused in outage
  std::uint64_t pictures_retransmitted = 0;  ///< sends with loss inflation
  std::uint64_t pictures_stalled = 0;        ///< sends gated by a stall
  std::uint64_t late_pictures = 0;           ///< missed playout deadlines
  std::uint64_t rate_relaxations = 0;        ///< kRateRelaxation boosts
  std::uint64_t denials = 0;                 ///< renegotiation refusals
  std::uint64_t retries = 0;                 ///< backoff re-requests
  std::uint64_t giveups = 0;                 ///< retry budgets exhausted
  double retransmitted_bits = 0.0;           ///< extra bits on the wire
  double worst_delay_excess = 0.0;  ///< max over i of (delay_i - D)+, s
  LatencyHistogram recovery_latency;  ///< request -> grant waits

  DegradationCounters& operator+=(const DegradationCounters& other) noexcept;

  /// True when any fault was injected or any degraded effect observed.
  bool any_fault() const noexcept;

  /// Flat JSON object in the PerfRegistry style, with the recovery
  /// histogram nested under "recovery_latency".
  std::string to_json() const;

  /// Publishes every field into `registry` under `<prefix>.` — integer
  /// tallies as counters, retransmitted_bits / worst_delay_excess as
  /// gauges, and recovery_latency as `<prefix>.recovery_latency_seconds`.
  void export_metrics(obs::Registry& registry, std::string_view prefix) const;
};

/// Monotonic wall clock, ns.
std::uint64_t wall_clock_ns() noexcept;

/// Per-thread CPU clock, ns (0 where the platform lacks one).
std::uint64_t thread_cpu_ns() noexcept;

}  // namespace lsm::runtime
