// Work-stealing thread pool for the multi-stream smoothing runtime.
//
// Each worker owns a double-ended task queue: the owner pushes and pops at
// the back (LIFO, cache-warm), idle workers steal from the front (FIFO,
// oldest work first). External submissions are distributed round-robin so a
// burst of jobs lands spread across workers even before stealing kicks in.
// Queues are guarded by small per-worker mutexes rather than a lock-free
// deque: the tasks this pool runs (one whole smoothing run each) cost
// hundreds of microseconds, so queue overhead is noise, and mutexes keep
// every access ThreadSanitizer-clean by construction.
//
// Workers are woken lazily, never keeping more of them runnable than the
// machine has cores: a submit wakes at most one sleeper, and a worker that
// pops a task while surplus work remains wakes the next (so a multicore
// machine still ramps to full width in a chain of microsecond wakeups).
// On a machine with fewer cores than workers this collapses a batch to the
// few workers the OS could actually run, instead of making every worker
// runnable and paying the scheduler's round-robin context switches. The
// policy assumes tasks never block on one another — true here, where every
// task is an independent smoothing run.
//
// wait_idle() blocks until every task submitted so far has finished; its
// mutex handoff is what orders worker-private writes (e.g. PerfCounters
// slots) before the caller's subsequent reads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lsm::runtime {

/// Grow-only circular task buffer: the owning worker pushes and pops at the
/// back, thieves pop at the front. Vector storage doubles to its high-water
/// size once and is then reused forever — unlike the std::deque it
/// replaced, which allocated and freed a block node every few tasks and was
/// the pool's only steady-state allocation (BM_MuxSteadyAllocs gates the
/// zero).
class TaskRing {
 public:
  bool empty() const noexcept { return size_ == 0; }

  void push_back(std::function<void()> task) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & (slots_.size() - 1)] = std::move(task);
    ++size_;
  }

  /// Requires !empty().
  std::function<void()> pop_back() {
    --size_;
    return std::move(slots_[(head_ + size_) & (slots_.size() - 1)]);
  }

  /// Requires !empty().
  std::function<void()> pop_front() {
    std::function<void()> task = std::move(slots_[head_]);
    head_ = (head_ + 1) & (slots_.size() - 1);
    --size_;
    return task;
  }

 private:
  /// Doubles the power-of-two slot array, unwrapping the ring.
  void grow();

  std::vector<std::function<void()>> slots_;
  std::size_t head_ = 0;  ///< index of the front element
  std::size_t size_ = 0;
};

class ThreadPool {
 public:
  /// Starts `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(int threads = 0);

  /// Finishes all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Enqueues a task. Callable from any thread, including pool workers
  /// (a worker submits to its own queue, so recursive fan-out stays local
  /// until another worker steals it).
  void submit(std::function<void()> task);

  /// Enqueues a group of tasks as one submission: every task is pushed and
  /// counted before any worker is woken, so a caller that immediately
  /// blocks in wait_idle() hands the CPU to the first worker once instead
  /// of racing it submission by submission. `tasks` is left empty.
  void submit_batch(std::vector<std::function<void()>>& tasks);

  /// Blocks until every task submitted before this call has completed.
  /// Establishes happens-before between those tasks' writes and the caller.
  void wait_idle();

  /// Index of the calling pool worker in [0, thread_count()), or -1 when
  /// called from a thread that does not belong to any pool.
  static int worker_index() noexcept;

  /// Like worker_index(), but -1 also when the caller belongs to a
  /// *different* pool — use when the index keys into per-worker state of
  /// this specific pool.
  int index_of_current_thread() const noexcept;

 private:
  struct Queue {
    std::mutex mutex;
    TaskRing tasks;
  };

  void worker_loop(int index);
  bool try_pop(int index, std::function<void()>& task);
  bool try_steal(int thief, std::function<void()>& task);

  /// With state_mutex_ held: wakes one sleeping worker iff unclaimed work
  /// exists, an unsignaled sleeper can take it, and waking keeps the
  /// runnable-worker count within the core budget.
  void maybe_wake_locked();

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::size_t pending_ = 0;       // submitted but not yet finished
  std::size_t queued_ = 0;        // submitted but not yet popped by a worker
  std::size_t next_queue_ = 0;    // round-robin cursor for external submits
  std::size_t sleepers_ = 0;      // workers blocked on work_ready_
  std::size_t signals_ = 0;       // wakeups issued but not yet consumed
  std::size_t max_active_ = 1;    // core budget for runnable workers
  bool stopping_ = false;
};

/// Runs body(0..n-1) on the pool and waits for all of them. The calls may
/// execute in any order and concurrently; `body` must be safe to invoke
/// from multiple threads.
void parallel_for(ThreadPool& pool, int n,
                  const std::function<void(int)>& body);

}  // namespace lsm::runtime
