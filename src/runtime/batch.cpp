#include "runtime/batch.h"

#include <stdexcept>

#include "core/estimator.h"

namespace lsm::runtime {

BatchSmoother::BatchSmoother(int threads)
    : pool_(threads), counters_(pool_.thread_count()) {}

std::vector<lsm::core::SmoothingResult> BatchSmoother::run(
    const std::vector<BatchJob>& jobs) {
  std::vector<lsm::core::SmoothingResult> results;
  run_into(jobs, results);
  return results;
}

void BatchSmoother::run_into(
    const std::vector<BatchJob>& jobs,
    std::vector<lsm::core::SmoothingResult>& results) {
  for (const BatchJob& job : jobs) {
    if (job.trace == nullptr) {
      throw std::invalid_argument("BatchJob with null trace");
    }
  }
  results.resize(jobs.size());
  parallel_for(pool_, static_cast<int>(jobs.size()), [&](int i) {
    const BatchJob& job = jobs[static_cast<std::size_t>(i)];
    const std::uint64_t wall_start = wall_clock_ns();
    const std::uint64_t cpu_start = thread_cpu_ns();
    const lsm::core::PatternEstimator estimator(*job.trace);
    lsm::core::SmoothingResult& result =
        results[static_cast<std::size_t>(i)];
    lsm::core::smooth_into(*job.trace, job.params, estimator, job.variant,
                           result);
    PerfCounters& slot = counters_.slot(pool_.index_of_current_thread());
    slot.streams += 1;
    slot.pictures += result.sends.size();
    for (const lsm::core::StepDiagnostics& d : result.diagnostics) {
      slot.rate_changes += d.rate_changed ? 1 : 0;
      slot.early_exits += d.early_exit ? 1 : 0;
    }
    slot.wall_ns += wall_clock_ns() - wall_start;
    slot.cpu_ns += thread_cpu_ns() - cpu_start;
  });
}

}  // namespace lsm::runtime
