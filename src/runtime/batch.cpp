#include "runtime/batch.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/estimator.h"
#include "obs/tracer.h"

namespace lsm::runtime {

BatchSmoother::BatchSmoother(int threads)
    : pool_(threads), counters_(pool_.thread_count()) {}

std::vector<lsm::core::SmoothingResult> BatchSmoother::run(
    const std::vector<BatchJob>& jobs) {
  std::vector<lsm::core::SmoothingResult> results;
  run_into(jobs, results);
  return results;
}

void BatchSmoother::run_into(
    const std::vector<BatchJob>& jobs,
    std::vector<lsm::core::SmoothingResult>& results) {
  for (const BatchJob& job : jobs) {
    if (job.trace == nullptr) {
      throw std::invalid_argument("BatchJob with null trace");
    }
  }
  results.resize(jobs.size());
  const int n = static_cast<int>(jobs.size());
  if (n == 0) return;
  // Contiguous shards, one per worker (fewer when jobs run short): job i
  // goes to shard i*shards/n, so adjacent jobs share a shard and the
  // results writes of one worker land in adjacent slots.
  const int shards = std::min(pool_.thread_count(), n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(shards));
  int lo = 0;
  for (int s = 0; s < shards; ++s) {
    const int hi = lo + n / shards + (s < n % shards ? 1 : 0);
    tasks.push_back([this, &jobs, &results, lo, hi] {
      PerfCounters& slot = counters_.slot(pool_.index_of_current_thread());
      // Shard events carry wall-clock time (runtime visibility in a chrome
      // trace); they are excluded from the determinism differential by
      // kind. Job streams below are attributed by job index, not worker,
      // so per-stream traces stay identical at every thread count.
      obs::StreamTracer shard_tracer(&obs::Tracer::global(),
                                     static_cast<std::uint32_t>(lo));
      const std::uint64_t wall_start = wall_clock_ns();
      shard_tracer.emit(obs::EventKind::kShardStart, 0,
                        static_cast<double>(wall_start) * 1e-9, lo, hi);
      const std::uint64_t cpu_start = thread_cpu_ns();
      for (int i = lo; i < hi; ++i) {
        const obs::StreamScope stream_scope(static_cast<std::uint32_t>(i));
        const BatchJob& job = jobs[static_cast<std::size_t>(i)];
        const lsm::core::PatternEstimator estimator(*job.trace);
        lsm::core::SmoothingResult& result =
            results[static_cast<std::size_t>(i)];
        lsm::core::smooth_into(*job.trace, job.params, estimator,
                               job.variant, result, job.path);
        slot.streams += 1;
        slot.pictures += result.sends.size();
        for (const lsm::core::StepDiagnostics& d : result.diagnostics) {
          slot.rate_changes += d.rate_changed ? 1 : 0;
          slot.early_exits += d.early_exit ? 1 : 0;
        }
      }
      slot.wall_ns += wall_clock_ns() - wall_start;
      slot.cpu_ns += thread_cpu_ns() - cpu_start;
      shard_tracer.emit(obs::EventKind::kShardEnd, 0,
                        static_cast<double>(wall_clock_ns()) * 1e-9, lo, hi);
    });
    lo = hi;
  }
  pool_.submit_batch(tasks);
  pool_.wait_idle();
}

}  // namespace lsm::runtime
