// Hierarchical timing wheel: the O(1)-amortized calendar behind the
// statmux shards (net/statmux.cpp), replacing the binary heap whose
// push/pop cost grew as O(log residency) — at 10^6 resident streams every
// scheduled picture paid ~20 pointer-chasing heap levels, and the heap was
// the shard hot path's dominant cache-miss source.
//
// The wheel is the classic hashed hierarchical design (Varghese & Lauck):
// kLevels levels of kSlots buckets each, where a level-l slot spans
// kSlots^l ticks. An entry due `delta` ticks out lands in the lowest level
// whose span covers delta; when the tick cursor crosses into a higher-level
// slot, that slot's bucket cascades down — each entry is re-scheduled and
// lands in a finer slot (ultimately level 0, whose slots are single
// ticks). Every entry is therefore touched O(kLevels) = O(1) times in its
// whole life, independent of how many entries are resident. Entries due
// beyond the top level's horizon go to an overflow list that is re-examined
// once per top-level lap.
//
// Contracts the statmux service depends on:
//
//   * Deterministic bucket order. collect() appends the due bucket in
//     insertion order (schedule() order, plus cascade order, both of which
//     are deterministic for a single-owner wheel). Consumers that need a
//     canonical processing order independent of insertion history sort the
//     collected batch themselves — the statmux shard sorts by
//     (id, generation), reproducing the old heap's (due, id, generation)
//     pop order exactly.
//   * Lazy cancellation. The wheel never removes an entry early; the owner
//     guards each entry with a generation stamp and skips stale ones at
//     collect() time (depart-during-in-flight semantics, DESIGN.md §3.6).
//     size() counts live and stale entries alike, which is what makes it a
//     useful leak detector: stale entries leave at their due tick, so
//     size() tracking far above the resident population means due ticks
//     are not being collected.
//   * Zero-allocation steady state. Buckets are std::vectors that keep
//     their high-water capacity across laps; once every bucket and the
//     cascade scratch have seen their peak, schedule/collect touch the
//     heap never again (BM_MuxSteadyAllocs gates the statmux epoch loop at
//     zero allocations).
//
// Single-owner: one thread (the owning shard's epoch task) calls
// schedule/collect. The wheel has no atomics; cross-thread hand-off is the
// caller's problem (the statmux pool's wait_idle() ordering).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsm::runtime {

/// Bucketed calendar over an int64 tick axis. Entry is any cheap-to-copy
/// value type exposing an `std::int64_t due` member — cascades re-file an
/// entry by its own due tick, so the wheel does not store the due
/// separately. (The statmux shard uses a {due, id, slot, generation} POD.)
template <typename Entry>
class TimingWheel {
 public:
  static constexpr int kSlotBits = 8;              ///< 256 slots per level
  static constexpr int kLevels = 3;                ///< horizon 2^24 ticks
  static constexpr std::int64_t kSlots = std::int64_t{1} << kSlotBits;
  static constexpr std::int64_t kHorizon = std::int64_t{1}
                                           << (kSlotBits * kLevels);

  /// Starts the tick cursor at `now`; the first collect() must use the
  /// same tick. Ticks only move forward, one collect() per tick.
  explicit TimingWheel(std::int64_t now = 0) : current_(now) {
    for (auto& level : levels_) {
      level.resize(static_cast<std::size_t>(kSlots));
    }
  }

  /// Files `entry` to fire at tick `due`. Requires due >= the next
  /// collect() tick; an earlier due is clamped to it (the entry fires on
  /// the very next collect).
  void schedule(std::int64_t due, const Entry& entry) {
    if (due < current_) due = current_;
    bucket_for(due).push_back(entry);
    ++size_;
  }

  /// Appends every entry due at tick `now` to `out` and advances the
  /// cursor to now + 1. `now` must equal the cursor (ticks are processed
  /// consecutively); each tick is collected exactly once.
  void collect(std::int64_t now, std::vector<Entry>& out) {
    // Crossing into a coarser slot cascades its bucket down one level
    // (top level first, so a top-level entry can fall through every level
    // in the same tick). After cascading, the level-0 bucket for `now`
    // holds exactly the entries due now: anything filed there was within
    // one level-0 lap of its due tick.
    for (int level = kLevels - 1; level >= 1; --level) {
      const std::int64_t span = std::int64_t{1} << (kSlotBits * level);
      if ((now & (span - 1)) == 0) cascade(level, now);
    }
    if ((now & (kHorizon - 1)) == 0 && !overflow_.empty()) refile_overflow();
    std::vector<Entry>& bucket = level_bucket(0, now);
    size_ -= static_cast<std::int64_t>(bucket.size());
    out.insert(out.end(), bucket.begin(), bucket.end());
    bucket.clear();  // keeps capacity: the slot is reused every lap
    current_ = now + 1;
  }

  /// Entries resident in the wheel (live and stale alike).
  std::int64_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::int64_t next_tick() const noexcept { return current_; }

 private:
  std::vector<Entry>& level_bucket(int level, std::int64_t tick) {
    const std::int64_t index = (tick >> (kSlotBits * level)) & (kSlots - 1);
    return levels_[static_cast<std::size_t>(level)]
                  [static_cast<std::size_t>(index)];
  }

  /// The finest bucket whose span still covers `due` from the cursor.
  std::vector<Entry>& bucket_for(std::int64_t due) {
    const std::int64_t delta = due - current_;
    for (int level = 0; level < kLevels; ++level) {
      if (delta < (std::int64_t{1} << (kSlotBits * (level + 1)))) {
        return level_bucket(level, due);
      }
    }
    return overflow_;
  }

  /// Re-files the bucket `now` just entered at `level` into finer slots.
  void cascade(int level, std::int64_t now) {
    std::vector<Entry>& bucket = level_bucket(level, now);
    if (bucket.empty()) return;
    // Swap through scratch: re-filing writes into other buckets only (a
    // cascaded entry always lands at a finer level), but the swap keeps
    // the loop safe by construction and the capacity is retained.
    cascade_scratch_.swap(bucket);
    size_ -= static_cast<std::int64_t>(cascade_scratch_.size());
    for (const Entry& entry : cascade_scratch_) {
      schedule(entry.due, entry);
    }
    cascade_scratch_.clear();
  }

  /// Once per top-level lap: entries filed beyond the horizon re-file; the
  /// still-too-far ones go back to overflow.
  void refile_overflow() {
    cascade_scratch_.swap(overflow_);
    size_ -= static_cast<std::int64_t>(cascade_scratch_.size());
    for (const Entry& entry : cascade_scratch_) {
      schedule(entry.due, entry);
    }
    cascade_scratch_.clear();
  }

  std::int64_t current_ = 0;  ///< next tick collect() will accept
  std::int64_t size_ = 0;
  std::vector<std::vector<std::vector<Entry>>> levels_{
      static_cast<std::size_t>(kLevels)};
  std::vector<Entry> overflow_;
  std::vector<Entry> cascade_scratch_;
};

}  // namespace lsm::runtime
