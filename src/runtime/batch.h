// BatchSmoother: run many independent smoothing jobs across a work-stealing
// thread pool with deterministic output ordering.
//
// Each job is one lsm::core::smooth() run (trace + parameters + variant).
// Jobs are sharded across the pool's workers as contiguous chunks, one
// chunk per worker: a whole smoothing run is already hundreds of
// microseconds, so one pool task per job buys no balance and pays a queue
// push, a wakeup, and two clock reads per job — coarse shards pay them per
// shard, and work stealing still rebalances at shard granularity when a
// worker stalls. Every job writes its result into its dedicated slot of the
// output vector, so the result at index i always belongs to the job at
// index i and is bitwise identical to what a serial smooth() call would
// have produced — smooth() is a pure function of its inputs and the workers
// share nothing but the (const) traces. Per-worker PerfCounters record what
// each worker did; a JSON report aggregates them for scaling studies and CI
// artifacts.
#pragma once

#include <string>
#include <vector>

#include "core/smoother.h"
#include "runtime/counters.h"
#include "runtime/pool.h"

namespace lsm::runtime {

/// One smoothing run. The referenced trace must outlive the batch call.
struct BatchJob {
  const lsm::trace::Trace* trace = nullptr;
  lsm::core::SmootherParams params;
  lsm::core::Variant variant = lsm::core::Variant::kBasic;
  /// kReference forces the virtual-dispatch loop for this job — the batch
  /// runtime's hook for differential A/B runs against the fast path.
  lsm::core::ExecutionPath path = lsm::core::ExecutionPath::kAuto;
};

/// Uniform helper: one kBasic job per trace, parameters chosen per trace by
/// `make_params` (e.g. bench::paper_params).
template <typename MakeParams>
std::vector<BatchJob> make_jobs(const std::vector<lsm::trace::Trace>& traces,
                                MakeParams&& make_params) {
  std::vector<BatchJob> jobs;
  jobs.reserve(traces.size());
  for (const lsm::trace::Trace& trace : traces) {
    jobs.push_back(BatchJob{&trace, make_params(trace),
                            lsm::core::Variant::kBasic});
  }
  return jobs;
}

class BatchSmoother {
 public:
  /// `threads` == 0 picks the hardware concurrency.
  explicit BatchSmoother(int threads = 0);

  int thread_count() const noexcept { return pool_.thread_count(); }

  /// The underlying pool, shareable with the encode side (encode_batch.h):
  /// e.g. build a pool_slice_executor on it between smoothing batches.
  ThreadPool& pool() noexcept { return pool_; }

  /// Runs every job and returns the results in job order. Blocks the
  /// calling thread; must not be called from this pool's own workers.
  /// Throws std::invalid_argument on a null trace.
  std::vector<lsm::core::SmoothingResult> run(
      const std::vector<BatchJob>& jobs);

  /// Same, writing into `results` (resized to jobs.size()); each slot's
  /// vector capacity is reused, so steady-state batches do not allocate.
  void run_into(const std::vector<BatchJob>& jobs,
                std::vector<lsm::core::SmoothingResult>& results);

  /// Counters accumulated since construction (or the last reset) across
  /// every run() call. Safe to read between runs, not during one.
  const PerfRegistry& counters() const noexcept { return counters_; }
  PerfRegistry& counters() noexcept { return counters_; }

  /// counters().to_json(), the CI-artifact report format.
  std::string report_json() const { return counters_.to_json(); }

 private:
  ThreadPool pool_;
  PerfRegistry counters_;
};

}  // namespace lsm::runtime
