#include "runtime/counters.h"

#include <chrono>
#include <cmath>
#include <string>

#include "obs/json.h"

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

namespace lsm::runtime {

PerfCounters& PerfCounters::operator+=(const PerfCounters& other) noexcept {
  streams += other.streams;
  pictures += other.pictures;
  rate_changes += other.rate_changes;
  early_exits += other.early_exits;
  wall_ns += other.wall_ns;
  cpu_ns += other.cpu_ns;
  return *this;
}

double PerfCounters::wall_ns_per_stream() const noexcept {
  return streams == 0 ? 0.0
                      : static_cast<double>(wall_ns) /
                            static_cast<double>(streams);
}

PerfRegistry::PerfRegistry(int workers)
    : workers_(workers),
      slots_(static_cast<std::size_t>(workers > 0 ? workers : 0) + 1) {}

PerfCounters& PerfRegistry::slot(int index) {
  if (index < 0 || index >= workers_) return slots_.back();
  return slots_[static_cast<std::size_t>(index)];
}

const PerfCounters& PerfRegistry::slot(int index) const {
  if (index < 0 || index >= workers_) return slots_.back();
  return slots_[static_cast<std::size_t>(index)];
}

PerfCounters PerfRegistry::total() const noexcept {
  PerfCounters sum;
  for (const PerfCounters& slot : slots_) sum += slot;
  return sum;
}

void PerfRegistry::reset() noexcept {
  for (PerfCounters& slot : slots_) slot = PerfCounters{};
}

namespace {

void write_counters(obs::JsonWriter& json, const PerfCounters& c) {
  json.begin_object();
  json.key("streams").value(c.streams);
  json.key("pictures").value(c.pictures);
  json.key("rate_changes").value(c.rate_changes);
  json.key("early_exits").value(c.early_exits);
  json.key("wall_ns").value(c.wall_ns);
  json.key("cpu_ns").value(c.cpu_ns);
  json.end_object();
}

std::string metric_name(std::string_view prefix, std::string_view field) {
  std::string name(prefix);
  name += '.';
  name += field;
  return name;
}

}  // namespace

std::string PerfRegistry::to_json() const {
  const PerfCounters sum = total();
  obs::JsonWriter json;
  json.begin_object();
  json.key("total");
  write_counters(json, sum);
  json.key("wall_ns_per_stream").value(sum.wall_ns_per_stream());
  json.key("workers").begin_array();
  for (int i = 0; i < workers_; ++i) write_counters(json, slot(i));
  json.end_array();
  json.key("external");
  write_counters(json, slots_.back());
  json.end_object();
  return json.take();
}

void PerfRegistry::export_metrics(obs::Registry& registry,
                                  std::string_view prefix) const {
  const PerfCounters sum = total();
  registry.counter(metric_name(prefix, "streams")).add(sum.streams);
  registry.counter(metric_name(prefix, "pictures")).add(sum.pictures);
  registry.counter(metric_name(prefix, "rate_changes"))
      .add(sum.rate_changes);
  registry.counter(metric_name(prefix, "early_exits")).add(sum.early_exits);
  registry.counter(metric_name(prefix, "wall_ns")).add(sum.wall_ns);
  registry.counter(metric_name(prefix, "cpu_ns")).add(sum.cpu_ns);
  registry.gauge(metric_name(prefix, "wall_ns_per_stream"))
      .set(sum.wall_ns_per_stream());
}

void LatencyHistogram::add(double seconds) noexcept {
  if (seconds < 0.0 || !std::isfinite(seconds)) {
    // Negative and non-finite samples are measurement bugs, not latencies;
    // clamp to 0 but keep them countable.
    seconds = 0.0;
    ++clamped_;
  }
  int index = 0;
  double bound = 0.001;
  while (index < kBuckets - 1 && seconds >= bound) {
    ++index;
    bound *= 2.0;
  }
  ++buckets_[static_cast<std::size_t>(index)];
  ++count_;
  if (seconds > max_seconds_) max_seconds_ = seconds;
}

LatencyHistogram& LatencyHistogram::operator+=(
    const LatencyHistogram& other) noexcept {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  clamped_ += other.clamped_;
  if (other.max_seconds_ > max_seconds_) max_seconds_ = other.max_seconds_;
  return *this;
}

std::string LatencyHistogram::to_json() const {
  obs::JsonWriter json;
  json.begin_object();
  json.key("count").value(count_);
  json.key("clamped").value(clamped_);
  json.key("max_s").value(max_seconds_);
  json.key("buckets").begin_array();
  for (int i = 0; i < kBuckets; ++i) {
    json.value(buckets_[static_cast<std::size_t>(i)]);
  }
  json.end_array();
  json.end_object();
  return json.take();
}

void LatencyHistogram::export_metrics(obs::Registry& registry,
                                      std::string_view name) const {
  registry.histogram(name).merge(buckets_.data(), count_, clamped_,
                                 max_seconds_);
}

DegradationCounters& DegradationCounters::operator+=(
    const DegradationCounters& other) noexcept {
  fades_injected += other.fades_injected;
  losses_injected += other.losses_injected;
  stalls_injected += other.stalls_injected;
  denial_windows_injected += other.denial_windows_injected;
  channel_transitions += other.channel_transitions;
  pictures_faded += other.pictures_faded;
  pictures_channel_faded += other.pictures_channel_faded;
  outage_denials += other.outage_denials;
  pictures_retransmitted += other.pictures_retransmitted;
  pictures_stalled += other.pictures_stalled;
  late_pictures += other.late_pictures;
  rate_relaxations += other.rate_relaxations;
  denials += other.denials;
  retries += other.retries;
  giveups += other.giveups;
  retransmitted_bits += other.retransmitted_bits;
  if (other.worst_delay_excess > worst_delay_excess) {
    worst_delay_excess = other.worst_delay_excess;
  }
  recovery_latency += other.recovery_latency;
  return *this;
}

bool DegradationCounters::any_fault() const noexcept {
  return fades_injected != 0 || losses_injected != 0 || stalls_injected != 0 ||
         denial_windows_injected != 0 || channel_transitions != 0 ||
         pictures_faded != 0 || pictures_channel_faded != 0 ||
         outage_denials != 0 ||
         pictures_retransmitted != 0 || pictures_stalled != 0 ||
         late_pictures != 0 || rate_relaxations != 0 || denials != 0 ||
         retries != 0 || giveups != 0 || retransmitted_bits != 0.0 ||
         worst_delay_excess != 0.0 || recovery_latency.count() != 0;
}

std::string DegradationCounters::to_json() const {
  obs::JsonWriter json;
  json.begin_object();
  json.key("fades_injected").value(fades_injected);
  json.key("losses_injected").value(losses_injected);
  json.key("stalls_injected").value(stalls_injected);
  json.key("denial_windows_injected").value(denial_windows_injected);
  json.key("channel_transitions").value(channel_transitions);
  json.key("pictures_faded").value(pictures_faded);
  json.key("pictures_channel_faded").value(pictures_channel_faded);
  json.key("outage_denials").value(outage_denials);
  json.key("pictures_retransmitted").value(pictures_retransmitted);
  json.key("pictures_stalled").value(pictures_stalled);
  json.key("late_pictures").value(late_pictures);
  json.key("rate_relaxations").value(rate_relaxations);
  json.key("denials").value(denials);
  json.key("retries").value(retries);
  json.key("giveups").value(giveups);
  json.key("retransmitted_bits").value(retransmitted_bits);
  json.key("worst_delay_excess").value(worst_delay_excess);
  json.key("recovery_latency");
  std::string out = json.take();
  out += recovery_latency.to_json();
  out += "}";
  return out;
}

void DegradationCounters::export_metrics(obs::Registry& registry,
                                         std::string_view prefix) const {
  obs::Registry& r = registry;
  r.counter(metric_name(prefix, "fades_injected")).add(fades_injected);
  r.counter(metric_name(prefix, "losses_injected")).add(losses_injected);
  r.counter(metric_name(prefix, "stalls_injected")).add(stalls_injected);
  r.counter(metric_name(prefix, "denial_windows_injected"))
      .add(denial_windows_injected);
  r.counter(metric_name(prefix, "channel_transitions"))
      .add(channel_transitions);
  r.counter(metric_name(prefix, "pictures_faded")).add(pictures_faded);
  r.counter(metric_name(prefix, "pictures_channel_faded"))
      .add(pictures_channel_faded);
  r.counter(metric_name(prefix, "outage_denials")).add(outage_denials);
  r.counter(metric_name(prefix, "pictures_retransmitted"))
      .add(pictures_retransmitted);
  r.counter(metric_name(prefix, "pictures_stalled")).add(pictures_stalled);
  r.counter(metric_name(prefix, "late_pictures")).add(late_pictures);
  r.counter(metric_name(prefix, "rate_relaxations")).add(rate_relaxations);
  r.counter(metric_name(prefix, "denials")).add(denials);
  r.counter(metric_name(prefix, "retries")).add(retries);
  r.counter(metric_name(prefix, "giveups")).add(giveups);
  r.gauge(metric_name(prefix, "retransmitted_bits"))
      .set(retransmitted_bits);
  r.gauge(metric_name(prefix, "worst_delay_excess"))
      .set(worst_delay_excess);
  recovery_latency.export_metrics(
      r, metric_name(prefix, "recovery_latency_seconds"));
}

std::uint64_t wall_clock_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t thread_cpu_ns() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return 0;
}

}  // namespace lsm::runtime
