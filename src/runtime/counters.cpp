#include "runtime/counters.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

namespace lsm::runtime {

PerfCounters& PerfCounters::operator+=(const PerfCounters& other) noexcept {
  streams += other.streams;
  pictures += other.pictures;
  rate_changes += other.rate_changes;
  early_exits += other.early_exits;
  wall_ns += other.wall_ns;
  cpu_ns += other.cpu_ns;
  return *this;
}

double PerfCounters::wall_ns_per_stream() const noexcept {
  return streams == 0 ? 0.0
                      : static_cast<double>(wall_ns) /
                            static_cast<double>(streams);
}

PerfRegistry::PerfRegistry(int workers)
    : workers_(workers),
      slots_(static_cast<std::size_t>(workers > 0 ? workers : 0) + 1) {}

PerfCounters& PerfRegistry::slot(int index) {
  if (index < 0 || index >= workers_) return slots_.back();
  return slots_[static_cast<std::size_t>(index)];
}

const PerfCounters& PerfRegistry::slot(int index) const {
  if (index < 0 || index >= workers_) return slots_.back();
  return slots_[static_cast<std::size_t>(index)];
}

PerfCounters PerfRegistry::total() const noexcept {
  PerfCounters sum;
  for (const PerfCounters& slot : slots_) sum += slot;
  return sum;
}

void PerfRegistry::reset() noexcept {
  for (PerfCounters& slot : slots_) slot = PerfCounters{};
}

namespace {

void append_counters(std::string& out, const PerfCounters& c) {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "{\"streams\": %" PRIu64 ", \"pictures\": %" PRIu64
                ", \"rate_changes\": %" PRIu64 ", \"early_exits\": %" PRIu64
                ", \"wall_ns\": %" PRIu64 ", \"cpu_ns\": %" PRIu64 "}",
                c.streams, c.pictures, c.rate_changes, c.early_exits,
                c.wall_ns, c.cpu_ns);
  out += buffer;
}

}  // namespace

std::string PerfRegistry::to_json() const {
  const PerfCounters sum = total();
  std::string out = "{\"total\": ";
  append_counters(out, sum);
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, ", \"wall_ns_per_stream\": %.1f",
                sum.wall_ns_per_stream());
  out += buffer;
  out += ", \"workers\": [";
  for (int i = 0; i < workers_; ++i) {
    if (i > 0) out += ", ";
    append_counters(out, slot(i));
  }
  out += "], \"external\": ";
  append_counters(out, slots_.back());
  out += "}";
  return out;
}

std::uint64_t wall_clock_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t thread_cpu_ns() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return 0;
}

}  // namespace lsm::runtime
