#include "runtime/counters.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

namespace lsm::runtime {

PerfCounters& PerfCounters::operator+=(const PerfCounters& other) noexcept {
  streams += other.streams;
  pictures += other.pictures;
  rate_changes += other.rate_changes;
  early_exits += other.early_exits;
  wall_ns += other.wall_ns;
  cpu_ns += other.cpu_ns;
  return *this;
}

double PerfCounters::wall_ns_per_stream() const noexcept {
  return streams == 0 ? 0.0
                      : static_cast<double>(wall_ns) /
                            static_cast<double>(streams);
}

PerfRegistry::PerfRegistry(int workers)
    : workers_(workers),
      slots_(static_cast<std::size_t>(workers > 0 ? workers : 0) + 1) {}

PerfCounters& PerfRegistry::slot(int index) {
  if (index < 0 || index >= workers_) return slots_.back();
  return slots_[static_cast<std::size_t>(index)];
}

const PerfCounters& PerfRegistry::slot(int index) const {
  if (index < 0 || index >= workers_) return slots_.back();
  return slots_[static_cast<std::size_t>(index)];
}

PerfCounters PerfRegistry::total() const noexcept {
  PerfCounters sum;
  for (const PerfCounters& slot : slots_) sum += slot;
  return sum;
}

void PerfRegistry::reset() noexcept {
  for (PerfCounters& slot : slots_) slot = PerfCounters{};
}

namespace {

void append_counters(std::string& out, const PerfCounters& c) {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "{\"streams\": %" PRIu64 ", \"pictures\": %" PRIu64
                ", \"rate_changes\": %" PRIu64 ", \"early_exits\": %" PRIu64
                ", \"wall_ns\": %" PRIu64 ", \"cpu_ns\": %" PRIu64 "}",
                c.streams, c.pictures, c.rate_changes, c.early_exits,
                c.wall_ns, c.cpu_ns);
  out += buffer;
}

}  // namespace

std::string PerfRegistry::to_json() const {
  const PerfCounters sum = total();
  std::string out = "{\"total\": ";
  append_counters(out, sum);
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, ", \"wall_ns_per_stream\": %.1f",
                sum.wall_ns_per_stream());
  out += buffer;
  out += ", \"workers\": [";
  for (int i = 0; i < workers_; ++i) {
    if (i > 0) out += ", ";
    append_counters(out, slot(i));
  }
  out += "], \"external\": ";
  append_counters(out, slots_.back());
  out += "}";
  return out;
}

void LatencyHistogram::add(double seconds) noexcept {
  if (!(seconds > 0.0)) seconds = 0.0;  // clamps negatives and NaN
  int index = 0;
  double bound = 0.001;
  while (index < kBuckets - 1 && seconds >= bound) {
    ++index;
    bound *= 2.0;
  }
  ++buckets_[static_cast<std::size_t>(index)];
  ++count_;
  if (seconds > max_seconds_) max_seconds_ = seconds;
}

LatencyHistogram& LatencyHistogram::operator+=(
    const LatencyHistogram& other) noexcept {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  if (other.max_seconds_ > max_seconds_) max_seconds_ = other.max_seconds_;
  return *this;
}

std::string LatencyHistogram::to_json() const {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer,
                "{\"count\": %" PRIu64 ", \"max_s\": %.6f, \"buckets\": [",
                count_, max_seconds_);
  std::string out = buffer;
  for (int i = 0; i < kBuckets; ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buffer, sizeof buffer, "%" PRIu64,
                  buckets_[static_cast<std::size_t>(i)]);
    out += buffer;
  }
  out += "]}";
  return out;
}

DegradationCounters& DegradationCounters::operator+=(
    const DegradationCounters& other) noexcept {
  fades_injected += other.fades_injected;
  losses_injected += other.losses_injected;
  stalls_injected += other.stalls_injected;
  denial_windows_injected += other.denial_windows_injected;
  pictures_faded += other.pictures_faded;
  pictures_retransmitted += other.pictures_retransmitted;
  pictures_stalled += other.pictures_stalled;
  late_pictures += other.late_pictures;
  rate_relaxations += other.rate_relaxations;
  denials += other.denials;
  retries += other.retries;
  giveups += other.giveups;
  retransmitted_bits += other.retransmitted_bits;
  if (other.worst_delay_excess > worst_delay_excess) {
    worst_delay_excess = other.worst_delay_excess;
  }
  recovery_latency += other.recovery_latency;
  return *this;
}

bool DegradationCounters::any_fault() const noexcept {
  return fades_injected != 0 || losses_injected != 0 || stalls_injected != 0 ||
         denial_windows_injected != 0 || pictures_faded != 0 ||
         pictures_retransmitted != 0 || pictures_stalled != 0 ||
         late_pictures != 0 || rate_relaxations != 0 || denials != 0 ||
         retries != 0 || giveups != 0 || retransmitted_bits != 0.0 ||
         worst_delay_excess != 0.0 || recovery_latency.count() != 0;
}

std::string DegradationCounters::to_json() const {
  char buffer[512];
  std::snprintf(
      buffer, sizeof buffer,
      "{\"fades_injected\": %" PRIu64 ", \"losses_injected\": %" PRIu64
      ", \"stalls_injected\": %" PRIu64
      ", \"denial_windows_injected\": %" PRIu64
      ", \"pictures_faded\": %" PRIu64 ", \"pictures_retransmitted\": %" PRIu64
      ", \"pictures_stalled\": %" PRIu64 ", \"late_pictures\": %" PRIu64
      ", \"rate_relaxations\": %" PRIu64 ", \"denials\": %" PRIu64
      ", \"retries\": %" PRIu64 ", \"giveups\": %" PRIu64
      ", \"retransmitted_bits\": %.0f, \"worst_delay_excess\": %.6f"
      ", \"recovery_latency\": ",
      fades_injected, losses_injected, stalls_injected,
      denial_windows_injected, pictures_faded, pictures_retransmitted,
      pictures_stalled, late_pictures, rate_relaxations, denials, retries,
      giveups, retransmitted_bits, worst_delay_excess);
  std::string out = buffer;
  out += recovery_latency.to_json();
  out += "}";
  return out;
}

std::uint64_t wall_clock_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t thread_cpu_ns() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return 0;
}

}  // namespace lsm::runtime
