#include "runtime/pool.h"

#include <memory>
#include <utility>

namespace lsm::runtime {

namespace {

// Identity of the current thread within its owning pool (null off-pool).
thread_local const ThreadPool* t_pool = nullptr;
thread_local int t_index = -1;

}  // namespace

void TaskRing::grow() {
  const std::size_t capacity = slots_.empty() ? 8 : slots_.size() * 2;
  std::vector<std::function<void()>> bigger(capacity);
  for (std::size_t k = 0; k < size_; ++k) {
    bigger[k] = std::move(slots_[(head_ + k) & (slots_.size() - 1)]);
  }
  slots_ = std::move(bigger);
  head_ = 0;
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  max_active_ = std::thread::hardware_concurrency();
  if (max_active_ == 0) max_active_ = static_cast<std::size_t>(threads);
  queues_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  std::lock_guard<std::mutex> lock(state_mutex_);
  ++pending_;
  ++queued_;
  if (t_pool == this) {
    // A worker fans out onto its own queue; thieves spread the load.
    target = static_cast<std::size_t>(t_index);
  } else {
    target = next_queue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> queue_lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  maybe_wake_locked();
}

void ThreadPool::submit_batch(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  std::lock_guard<std::mutex> lock(state_mutex_);
  for (std::function<void()>& task : tasks) {
    ++pending_;
    ++queued_;
    const std::size_t target = t_pool == this
                                   ? static_cast<std::size_t>(t_index)
                                   : next_queue_++ % queues_.size();
    std::lock_guard<std::mutex> queue_lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  tasks.clear();
  maybe_wake_locked();
}

void ThreadPool::maybe_wake_locked() {
  const std::size_t awake = workers_.size() - sleepers_ + signals_;
  if (queued_ > 0 && sleepers_ > signals_ && awake < max_active_) {
    ++signals_;
    work_ready_.notify_one();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

int ThreadPool::worker_index() noexcept {
  return t_pool != nullptr ? t_index : -1;
}

int ThreadPool::index_of_current_thread() const noexcept {
  return t_pool == this ? t_index : -1;
}

bool ThreadPool::try_pop(int index, std::function<void()>& task) {
  Queue& queue = *queues_[static_cast<std::size_t>(index)];
  std::lock_guard<std::mutex> lock(queue.mutex);
  if (queue.tasks.empty()) return false;
  task = queue.tasks.pop_back();
  return true;
}

bool ThreadPool::try_steal(int thief, std::function<void()>& task) {
  const std::size_t count = queues_.size();
  for (std::size_t offset = 1; offset < count; ++offset) {
    const std::size_t victim =
        (static_cast<std::size_t>(thief) + offset) % count;
    Queue& queue = *queues_[victim];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty()) continue;
    task = queue.tasks.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(int index) {
  t_pool = this;
  t_index = index;
  for (;;) {
    std::function<void()> task;
    if (!try_pop(index, task) && !try_steal(index, task)) {
      std::unique_lock<std::mutex> lock(state_mutex_);
      if (stopping_ && queued_ == 0) return;
      // queued_ may exceed the queues' visible contents for the instant
      // between a rival's pop and its decrement; the re-scan handles it.
      ++sleepers_;
      while (!(queued_ > 0 || stopping_)) {
        work_ready_.wait(lock);
        // Consume whatever woke us (signals_ conservatively undercounts on
        // spurious wakeups, which only ever costs an extra notify).
        if (signals_ > 0) --signals_;
      }
      --sleepers_;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      --queued_;
      // Surplus work remains: wake the next worker (if the core budget
      // allows) before running the task, so a multicore machine ramps to
      // full width while the first task is still executing.
      maybe_wake_locked();
    }
    task();
    task = nullptr;  // release captures before reporting completion
    std::lock_guard<std::mutex> lock(state_mutex_);
    --pending_;
    if (pending_ == 0) all_done_.notify_all();
  }
}

void parallel_for(ThreadPool& pool, int n,
                  const std::function<void(int)>& body) {
  for (int i = 0; i < n; ++i) {
    pool.submit([&body, i] { body(i); });
  }
  pool.wait_idle();
}

}  // namespace lsm::runtime
