// Bounded lock-free multi-producer / single-consumer ring.
//
// The statmux service (net/statmux.h) gives every shard one of these as its
// admission/departure mailbox: any thread may enqueue a command at any time,
// and the shard's epoch task — the only consumer — drains the ring at epoch
// start. The queue is the Vyukov bounded-MPMC design restricted to one
// consumer: each slot carries an atomic sequence number; a producer claims a
// slot by CAS-advancing the head and publishes the payload by bumping the
// slot's sequence (release), which is exactly the edge the consumer
// acquires. No slot is ever written by two producers, no payload is read
// before its publish, and neither side takes a lock — a full ring fails the
// push instead of blocking, so admission back-pressure is explicit and the
// caller can retry after the next epoch drains.
//
// Determinism note: the ring preserves *claim* order (the order producer
// CASes won), which under concurrent producers is a race — deliberately so.
// Consumers that need an interleaving-independent result (StatmuxService
// does) must canonicalize the drained batch themselves, e.g. by sorting on
// a payload key; see DESIGN.md §3.6.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

namespace lsm::runtime {

/// Bounded MPSC ring holding trivially-copyable-ish values of type T.
/// Capacity is rounded up to a power of two. Not copyable or movable:
/// producers and the consumer hold references to it.
template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t capacity)
      : mask_(round_up_pow2(capacity) - 1),
        slots_(std::make_unique<Slot[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Enqueues `value`. Returns false when the ring is full (the value is
  /// untouched). Safe to call from any number of threads concurrently.
  bool try_push(const T& value) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const std::ptrdiff_t diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        // Slot free at this position: try to claim it.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = value;
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry with the new position.
      } else if (diff < 0) {
        // Slot still holds an unconsumed value from a lap ago: full.
        return false;
      } else {
        // Another producer claimed this position; chase the head.
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Dequeues into `out`. Returns false when the ring is empty. Must only
  /// ever be called from one thread at a time (the single consumer).
  bool try_pop(T& out) {
    const std::size_t pos = tail_;
    Slot& slot = slots_[pos & mask_];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    const std::ptrdiff_t diff = static_cast<std::ptrdiff_t>(seq) -
                                static_cast<std::ptrdiff_t>(pos + 1);
    if (diff < 0) return false;  // slot not yet published: empty
    out = slot.value;
    // Mark the slot free for the producer one lap ahead.
    slot.seq.store(pos + mask_ + 1, std::memory_order_release);
    tail_ = pos + 1;
    return true;
  }

  /// Batch drain: appends every published value to `out` and frees the
  /// slots. Consumer-side only. Bounded by a single head snapshot taken on
  /// entry, so a drain can never chase producers forever; it also stops
  /// early at a claimed-but-unpublished slot (that producer's CAS won but
  /// its release store hasn't landed), leaving that value and everything
  /// after it for the next drain — the same any-time-after-claim
  /// visibility contract try_pop has, amortizing the per-value atomic
  /// traffic to one acquire load + one release store per slot with no
  /// per-value function-call or emptiness re-check overhead.
  /// Returns the number of values appended.
  std::size_t drain_into(std::vector<T>& out) {
    const std::size_t head = head_.load(std::memory_order_acquire);
    std::size_t pos = tail_;
    std::size_t drained = 0;
    while (pos != head) {
      Slot& slot = slots_[pos & mask_];
      const std::ptrdiff_t diff =
          static_cast<std::ptrdiff_t>(slot.seq.load(std::memory_order_acquire)) -
          static_cast<std::ptrdiff_t>(pos + 1);
      if (diff < 0) break;  // claimed, not yet published: next epoch's
      out.push_back(slot.value);
      slot.seq.store(pos + mask_ + 1, std::memory_order_release);
      ++pos;
      ++drained;
    }
    tail_ = pos;
    return drained;
  }

  /// True when a pop would currently fail. Consumer-side only (producers
  /// racing concurrently can invalidate the answer immediately).
  bool empty() const {
    const Slot& slot = slots_[tail_ & mask_];
    return static_cast<std::ptrdiff_t>(
               slot.seq.load(std::memory_order_acquire)) -
               static_cast<std::ptrdiff_t>(tail_ + 1) <
           0;
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq;
    T value;
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  /// Producers CAS head_ to claim slots; consumer owns tail_ exclusively.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::size_t tail_ = 0;
};

}  // namespace lsm::runtime
