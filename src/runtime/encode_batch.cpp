#include "runtime/encode_batch.h"

#include <algorithm>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/tracer.h"

namespace lsm::runtime {

lsm::mpeg::SliceExecutor pool_slice_executor(ThreadPool& pool) {
  return [&pool](int count, const std::function<void(int)>& body) {
    std::mutex error_mutex;
    std::exception_ptr first_error;
    parallel_for(pool, count, [&](int i) {
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
    if (first_error) std::rethrow_exception(first_error);
  };
}

BatchEncoder::BatchEncoder(int threads)
    : pool_(threads), counters_(pool_.thread_count()) {}

std::vector<lsm::mpeg::EncodeResult> BatchEncoder::run(
    const std::vector<EncodeJob>& jobs) {
  for (const EncodeJob& job : jobs) {
    if (job.frames == nullptr) {
      throw std::invalid_argument("EncodeJob with null frames");
    }
  }
  std::vector<lsm::mpeg::EncodeResult> results(jobs.size());
  const int n = static_cast<int>(jobs.size());
  if (n == 0) return results;

  std::mutex error_mutex;
  std::exception_ptr first_error;

  // Contiguous shards, one per worker, as in BatchSmoother: a whole encode
  // is far coarser than the queue overhead, and stealing rebalances at
  // shard granularity.
  const int shards = std::min(pool_.thread_count(), n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(shards));
  int lo = 0;
  for (int s = 0; s < shards; ++s) {
    const int hi = lo + n / shards + (s < n % shards ? 1 : 0);
    tasks.push_back([this, &jobs, &results, &error_mutex, &first_error, lo,
                     hi] {
      PerfCounters& slot = counters_.slot(pool_.index_of_current_thread());
      obs::StreamTracer shard_tracer(&obs::Tracer::global(),
                                     static_cast<std::uint32_t>(lo));
      const std::uint64_t wall_start = wall_clock_ns();
      shard_tracer.emit(obs::EventKind::kShardStart, 0,
                        static_cast<double>(wall_start) * 1e-9, lo, hi);
      const std::uint64_t cpu_start = thread_cpu_ns();
      for (int i = lo; i < hi; ++i) {
        const EncodeJob& job = jobs[static_cast<std::size_t>(i)];
        try {
          // Worker-run jobs must not fan slice rows back into this pool
          // (nested wait_idle); encode serially within the job.
          lsm::mpeg::EncoderConfig config = job.config;
          config.slice_executor = {};
          const lsm::mpeg::Encoder encoder(std::move(config));
          results[static_cast<std::size_t>(i)] = encoder.encode(*job.frames);
          slot.streams += 1;
          slot.pictures +=
              results[static_cast<std::size_t>(i)].pictures.size();
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
      slot.wall_ns += wall_clock_ns() - wall_start;
      slot.cpu_ns += thread_cpu_ns() - cpu_start;
      shard_tracer.emit(obs::EventKind::kShardEnd, 0,
                        static_cast<double>(wall_clock_ns()) * 1e-9, lo, hi);
    });
    lo = hi;
  }
  pool_.submit_batch(tasks);
  pool_.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace lsm::runtime
