// BatchEncoder: run many independent MPEG encodes across the work-stealing
// thread pool, plus the adapter that lets ONE encode spread its slice rows
// over the same pool.
//
// Two axes of parallelism, used one at a time:
//   - Across jobs (BatchEncoder::run): each job is a whole
//     mpeg::Encoder::encode() call — seconds of work — sharded across the
//     workers exactly like BatchSmoother shards smoothing runs. Jobs run
//     with their slice_executor stripped: a pool worker must not call
//     parallel_for on its own pool (wait_idle from a worker would deadlock),
//     and job-level parallelism already saturates the machine.
//   - Within a job (pool_slice_executor): a caller encoding a single
//     sequence from outside the pool hands slice rows to the workers. The
//     encoder splices per-slice writers in row order, so the stream is
//     byte-identical at every thread count (mpeg/encoder.h).
#pragma once

#include <string>
#include <vector>

#include "mpeg/encoder.h"
#include "runtime/counters.h"
#include "runtime/pool.h"

namespace lsm::runtime {

/// Slice executor running bodies on `pool` via parallel_for. The pool must
/// outlive the returned function. Must be invoked from outside the pool
/// (parallel_for blocks in wait_idle). Exceptions thrown by a body are
/// captured and the first one is rethrown to the caller.
lsm::mpeg::SliceExecutor pool_slice_executor(ThreadPool& pool);

/// One encoding run. The referenced frames must outlive the batch call.
struct EncodeJob {
  const std::vector<lsm::mpeg::Frame>* frames = nullptr;
  lsm::mpeg::EncoderConfig config;
};

class BatchEncoder {
 public:
  /// `threads` == 0 picks the hardware concurrency.
  explicit BatchEncoder(int threads = 0);

  int thread_count() const noexcept { return pool_.thread_count(); }

  /// The underlying pool — e.g. to build a pool_slice_executor for a
  /// standalone encode between batches.
  ThreadPool& pool() noexcept { return pool_; }

  /// Runs every job and returns the results in job order. Blocks the
  /// calling thread; must not be called from this pool's own workers.
  /// Throws std::invalid_argument on a null frames pointer; the first
  /// exception thrown inside a job is rethrown after the batch drains.
  std::vector<lsm::mpeg::EncodeResult> run(const std::vector<EncodeJob>& jobs);

  /// Counters accumulated since construction (or the last reset) across
  /// every run() call. Safe to read between runs, not during one.
  const PerfRegistry& counters() const noexcept { return counters_; }
  PerfRegistry& counters() noexcept { return counters_; }

  /// counters().to_json(), the CI-artifact report format.
  std::string report_json() const { return counters_.to_json(); }

 private:
  ThreadPool pool_;
  PerfRegistry counters_;
};

}  // namespace lsm::runtime
