// Transport-level integration of the smoothing algorithm (the paper's
// Figure 1 system model, run as an actual event-driven pipeline):
//
//   encoder --> [FIFO queue + smoother] --notify(i, r_i)--> paced sender
//       --> network (fixed latency) --> receiver playback buffer
//
// The encoder side is driven by a picture-size trace: picture i's arrival
// completes at time i*tau. The smoother engine's rate decision for picture i
// is made at t_i = max(d_{i-1}, (i-1+K) tau) — an event scheduled on the
// simulation queue, using only information available at that instant (the
// engine is causal by construction). The receiver starts displaying picture
// i at playout_offset + (i-1) tau and underflows if the picture's last bit
// has not arrived by then. Theorem 1 guarantees zero underflows whenever
// playout_offset >= D + network_latency + jitter (the jitter term is the
// *bound* of the uniform[0, jitter) per-picture component, never a sampled
// value — the auto-selected offset must cover the worst draw).
//
// run_faulted_pipeline() runs the same model against a sim::FaultPlan and
// an optional sim::ChannelPlan (Markov block-fading): the engine still
// plans in ideal time (its grants are the contract), while the channel
// underneath fades — via ad-hoc fade windows and/or the Markov chain's
// state factors, composed by min — loses bits, stalls arrivals, and
// denies rate renegotiations; net/recovery.h decides how the sender
// degrades. A plan with no events plus an empty channel plan reproduces
// run_live_pipeline() bitwise — the differential guard for the Theorem 1
// path.
#pragma once

#include <functional>
#include <vector>

#include "core/fastpath.h"
#include "core/smoother.h"
#include "net/recovery.h"
#include "obs/sketch.h"
#include "runtime/counters.h"
#include "sim/channel.h"
#include "sim/event_queue.h"
#include "sim/fault.h"

namespace lsm::net {

struct PipelineConfig {
  core::SmootherParams params;
  double network_latency = 0.010;  ///< one-way base delay, seconds (>= 0)
  double jitter = 0.0;             ///< extra uniform[0, jitter) per picture
  std::uint64_t jitter_seed = 1;   ///< deterministic jitter stream
  /// 0 selects D + latency + jitter (the Theorem 1 bound); explicit values
  /// must be finite and > 0 — negative offsets throw.
  double playout_offset = 0.0;
  /// Devirtualized fast path (kAuto) or the virtual reference loop
  /// (kReference, the differential-testing flag).
  core::ExecutionPath execution_path = core::ExecutionPath::kAuto;
};

struct PictureDelivery {
  int index = 0;             ///< 1-based picture
  double sender_start = 0.0; ///< t_i
  double sender_done = 0.0;  ///< d_i
  double received = 0.0;     ///< last bit at receiver
  double deadline = 0.0;     ///< playout instant
  bool late = false;
};

struct PipelineReport {
  std::vector<PictureDelivery> deliveries;
  int underflows = 0;
  double max_sender_delay = 0.0;  ///< max d_i - (i-1) tau
  /// Max over pictures of (delay_i - D)+: 0 inside the Theorem 1 regime,
  /// the worst-case overshoot of the delay bound under faults.
  double worst_delay_excess = 0.0;
  double playout_offset = 0.0;
  /// Health-plane distributions, one observation per sent picture
  /// (DESIGN.md §3.10): sender delay d_i - (i-1) tau, and slack D - delay
  /// (a negative slack clamps into bucket 0, so `clamped` counts the
  /// delay-bound violations). Same fixed geometry as the statmux service's
  /// sketches — a caller can merge pipeline reports bit-exactly.
  obs::QuantileSketch delay_sketch;
  obs::QuantileSketch slack_sketch;

  bool clean() const noexcept { return underflows == 0; }
};

/// Runs the full pipeline for `trace`. The smoothing decisions are made
/// inside simulated time via SmootherEngine.
PipelineReport run_live_pipeline(const lsm::trace::Trace& trace,
                                 const PipelineConfig& config);

struct FaultedPipelineConfig {
  PipelineConfig base;
  RecoveryPolicy recovery;
  /// Block-fading channel underneath the granted rates; composes with
  /// FaultPlan fades by the min rule. The default (empty) plan is the
  /// ideal channel and preserves the zero-intensity bitwise identity.
  sim::ChannelPlan channel;
  /// When > 0, renegotiation signalling shares the faded link: requests
  /// issued while channel.factor_at(t) <= threshold are refused like
  /// denial-window hits (tallied in DegradationCounters::outage_denials),
  /// and entering such a state arms a "channel_outage" flight-recorder
  /// trigger. <= 0 disables the coupling.
  double channel_outage_threshold = 0.0;
};

struct FaultedPipelineReport {
  /// Same shape as the un-faulted output; sender times and lateness reflect
  /// the degraded channel.
  PipelineReport report;
  runtime::DegradationCounters degradation;
};

/// Runs the pipeline with `plan`'s faults injected on the event queue and
/// `config.recovery` governing the response. Deterministic: identical
/// (trace, config, plan) yields a bitwise-identical report; an empty plan
/// yields run_live_pipeline()'s report field-for-field.
FaultedPipelineReport run_faulted_pipeline(const lsm::trace::Trace& trace,
                                           const FaultedPipelineConfig& config,
                                           const sim::FaultPlan& plan);

}  // namespace lsm::net
