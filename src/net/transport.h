// Transport-level integration of the smoothing algorithm (the paper's
// Figure 1 system model, run as an actual event-driven pipeline):
//
//   encoder --> [FIFO queue + smoother] --notify(i, r_i)--> paced sender
//       --> network (fixed latency) --> receiver playback buffer
//
// The encoder side is driven by a picture-size trace: picture i's arrival
// completes at time i*tau. The smoother engine's rate decision for picture i
// is made at t_i = max(d_{i-1}, (i-1+K) tau) — an event scheduled on the
// simulation queue, using only information available at that instant (the
// engine is causal by construction). The receiver starts displaying picture
// i at playout_offset + (i-1) tau and underflows if the picture's last bit
// has not arrived by then. Theorem 1 guarantees zero underflows whenever
// playout_offset >= D + network_latency + jitter (the jitter term bounds
// the random per-picture delay component).
#pragma once

#include <functional>
#include <vector>

#include "core/smoother.h"
#include "sim/event_queue.h"

namespace lsm::net {

struct PipelineConfig {
  core::SmootherParams params;
  double network_latency = 0.010;  ///< one-way base delay, seconds (>= 0)
  double jitter = 0.0;             ///< extra uniform[0, jitter] per picture
  std::uint64_t jitter_seed = 1;   ///< deterministic jitter stream
  double playout_offset = 0.0;     ///< 0 selects D + latency + jitter
};

struct PictureDelivery {
  int index = 0;             ///< 1-based picture
  double sender_start = 0.0; ///< t_i
  double sender_done = 0.0;  ///< d_i
  double received = 0.0;     ///< last bit at receiver
  double deadline = 0.0;     ///< playout instant
  bool late = false;
};

struct PipelineReport {
  std::vector<PictureDelivery> deliveries;
  int underflows = 0;
  double max_sender_delay = 0.0;  ///< max d_i - (i-1) tau
  double playout_offset = 0.0;

  bool clean() const noexcept { return underflows == 0; }
};

/// Runs the full pipeline for `trace`. The smoothing decisions are made
/// inside simulated time via SmootherEngine.
PipelineReport run_live_pipeline(const lsm::trace::Trace& trace,
                                 const PipelineConfig& config);

}  // namespace lsm::net
