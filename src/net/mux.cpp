#include "net/mux.h"

#include <algorithm>
#include <stdexcept>

namespace lsm::net {

MuxResult simulate_cell_mux(const std::vector<std::vector<Cell>>& sources,
                            const MuxConfig& config) {
  if (config.buffer_cells < 1 || config.service_rate_bps <= 0.0) {
    throw std::invalid_argument("simulate_cell_mux: bad config");
  }
  // Merge all arrivals by time (stable across sources for determinism).
  std::vector<Cell> arrivals;
  std::size_t total = 0;
  for (const auto& source : sources) total += source.size();
  arrivals.reserve(total);
  for (const auto& source : sources) {
    arrivals.insert(arrivals.end(), source.begin(), source.end());
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Cell& a, const Cell& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.source < b.source;
                   });

  MuxResult result;
  result.arrived_by_source.assign(sources.size(), 0);
  result.dropped_by_source.assign(sources.size(), 0);

  const double cell_service_time =
      static_cast<double>(kCellPayloadBits) / config.service_rate_bps;
  double backlog = 0.0;  // cells in the buffer (fractional during drain)
  double last_time = arrivals.empty() ? 0.0 : arrivals.front().time;
  double weighted_backlog = 0.0;

  for (const Cell& cell : arrivals) {
    // Drain since the previous event; the backlog falls linearly at one cell
    // per service time until empty.
    const double dt = cell.time - last_time;
    const double drainable = dt / cell_service_time;
    if (drainable >= backlog) {
      weighted_backlog += 0.5 * backlog * backlog * cell_service_time;
      backlog = 0.0;
    } else {
      weighted_backlog += (backlog - 0.5 * drainable) * dt;
      backlog -= drainable;
    }
    last_time = cell.time;

    ++result.arrived;
    ++result.arrived_by_source[static_cast<std::size_t>(cell.source)];
    if (backlog + 1.0 > static_cast<double>(config.buffer_cells)) {
      ++result.dropped;
      ++result.dropped_by_source[static_cast<std::size_t>(cell.source)];
    } else {
      backlog += 1.0;
      result.max_backlog_cells = std::max(result.max_backlog_cells, backlog);
    }
  }

  if (result.arrived > 0) {
    result.loss_ratio = static_cast<double>(result.dropped) /
                        static_cast<double>(result.arrived);
    const double span = last_time - arrivals.front().time;
    if (span > 0.0) result.mean_backlog_cells = weighted_backlog / span;
  }
  return result;
}

FluidMuxResult simulate_fluid_mux(
    const std::vector<core::RateSchedule>& sources,
    const FluidMuxConfig& config) {
  if (config.buffer_bits < 0.0 || config.service_rate_bps <= 0.0 ||
      config.step <= 0.0) {
    throw std::invalid_argument("simulate_fluid_mux: bad config");
  }
  double t_begin = 0.0;
  double t_end = 0.0;
  for (const core::RateSchedule& source : sources) {
    if (source.empty()) continue;
    t_begin = std::min(t_begin, source.start_time());
    t_end = std::max(t_end, source.end_time());
  }

  FluidMuxResult result;
  double backlog = 0.0;
  for (double t = t_begin; t < t_end; t += config.step) {
    const double mid = t + 0.5 * config.step;
    double in_rate = 0.0;
    for (const core::RateSchedule& source : sources) {
      in_rate += source.rate_at(mid);
    }
    const double inflow = in_rate * config.step;
    result.offered_bits += inflow;
    backlog += inflow - config.service_rate_bps * config.step;
    if (backlog > config.buffer_bits) {
      result.lost_bits += backlog - config.buffer_bits;
      backlog = config.buffer_bits;
    }
    if (backlog < 0.0) backlog = 0.0;
    result.max_backlog_bits = std::max(result.max_backlog_bits, backlog);
  }
  if (result.offered_bits > 0.0) {
    result.loss_ratio = result.lost_bits / result.offered_bits;
  }
  return result;
}

}  // namespace lsm::net
