#include "net/statmux.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/series_ops.h"
#include "core/streaming.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "runtime/mpsc_ring.h"
#include "runtime/pool.h"
#include "runtime/slab_arena.h"
#include "runtime/timing_wheel.h"
#include "sim/rng.h"

namespace lsm::net {

using lsm::trace::Bits;
using lsm::trace::GopPattern;
using lsm::trace::PictureType;

Bits synthetic_picture_size(std::uint64_t seed, int index, PictureType type,
                            const core::DefaultSizes& defaults) {
  // One splitmix64 step over (seed, index): a pure hash, so the feed can
  // be replayed anywhere without carrying generator state.
  std::uint64_t state =
      seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(index));
  const std::uint64_t word = sim::splitmix64(state);
  // ±25% modulation from the top 53 bits.
  const double unit =
      static_cast<double>(word >> 11) * (1.0 / 9007199254740992.0);
  const double modulated =
      static_cast<double>(defaults.of(type)) * (0.75 + 0.5 * unit);
  const Bits size = static_cast<Bits>(modulated);
  return size < 1 ? 1 : size;
}

double StreamSpec::nominal_rate() const {
  const GopPattern pattern(gop_n, gop_m);
  Bits per_pattern = 0;
  for (int i = 1; i <= pattern.N(); ++i) {
    per_pattern += defaults.of(pattern.type_of(i));
  }
  return static_cast<double>(per_pattern) /
         (static_cast<double>(pattern.N()) * params.tau);
}

void StatmuxConfig::validate() const {
  if (shards < 1) throw std::invalid_argument("statmux: shards must be >= 1");
  if (ring_capacity < 1) {
    throw std::invalid_argument("statmux: ring_capacity must be >= 1");
  }
  if (max_streams_per_shard < 1) {
    throw std::invalid_argument("statmux: shard capacity must be >= 1");
  }
  if (link_rate_bps <= 0) {
    throw std::invalid_argument("statmux: link rate must be > 0");
  }
  if (bucket_sigma_bits < 0) {
    throw std::invalid_argument("statmux: bucket depth must be >= 0");
  }
  if (tick_seconds <= 0) {
    throw std::invalid_argument("statmux: tick must be > 0");
  }
  if (threads < 0) {
    throw std::invalid_argument("statmux: threads must be >= 0");
  }
}

namespace {

/// Same reassociation tolerance as net/transport's delay-excess check: a
/// send is SLO-good when delay <= D + kDelayTolerance.
constexpr double kDelayTolerance = 1e-9;

/// Slack fed to the health sketches: D - delay, with within-tolerance
/// negatives snapped to 0.0 so the slack sketch's `clamped` tally counts
/// exactly the SLO-bad sends, not reassociation noise.
double slack_value(double delay, double bound) {
  const double slack = bound - delay;
  return slack < 0.0 && delay <= bound + kDelayTolerance ? 0.0 : slack;
}

/// Geometry of the health-plane time series, from the config knobs.
/// Integer-valued series (counts): sum_scale 1.0, per-window sketches on.
lsm::obs::TimeSeriesOptions health_series_options(
    const lsm::net::StatmuxConfig& config) {
  lsm::obs::TimeSeriesOptions options;
  options.window_count = config.health_window_count;
  options.epochs_per_window = config.health_epochs_per_window;
  options.sum_scale = 1.0;
  options.with_sketch = true;
  return options;
}

struct Command {
  enum class Kind : std::uint8_t { kAdmit = 0, kDepart = 1 };
  Kind kind = Kind::kAdmit;
  StreamSpec spec;  ///< depart uses spec.id only
};

/// Cheap spec screening done on the admitting thread, so shard tasks never
/// see a spec whose GopPattern construction or params validation throws.
bool spec_is_valid(const StreamSpec& spec) {
  if (spec.id == 0) return false;
  if (spec.gop_n < 1 || spec.gop_m < 1 || spec.gop_m > spec.gop_n ||
      spec.gop_n % spec.gop_m != 0) {
    return false;
  }
  if (spec.period_ticks < 1 || spec.phase_ticks < 0 ||
      spec.picture_count < 0) {
    return false;
  }
  try {
    spec.params.validate();
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

/// Calendar token in a shard's timing wheel. Carries the stream's arena
/// slot so the advance loop never touches the id->slot map, and the
/// generation current when the entry was filed (mismatch == stale: the
/// stream departed — and the slot possibly got recycled — while this entry
/// was in flight). `due` is required by TimingWheel for cascades; `id` is
/// the canonical sort key of the per-tick advance order.
struct WheelEntry {
  std::int64_t due = 0;
  std::uint32_t id = 0;
  std::uint32_t slot = 0;
  std::uint64_t generation = 0;
};

void prefetch(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address);
#else
  (void)address;
#endif
}

/// Per-stream feed metadata the advance loop reads on every arrival,
/// grouped into ONE slab record so advancing a stream touches one
/// metadata cache line instead of one per field.
struct StreamMeta {
  std::uint64_t feed_seed = 0;
  std::int32_t next_push = 1;  ///< next picture index to feed
  std::int32_t period_ticks = 1;
  std::int32_t picture_count = 0;
  double delay_bound = 0.0;  ///< params.D: the slack/SLO reference point
  GopPattern pattern{1, 1};
  core::DefaultSizes defaults;
};

/// Slab-backed structure-of-arrays stream state (DESIGN.md §3.9). Dense
/// slots come from a LIFO free-list; the hot fields form contiguous lanes
/// indexed by slot — the stale-check generations, the reservation rates,
/// the per-arrival StreamMeta records — and the StreamingSmoother objects
/// live in a parallel slab that is reset IN PLACE on slot reuse: a
/// recycled stream inherits the previous occupant's buffer capacity, so
/// steady-state admit/depart churn allocates nothing beyond the cold
/// id->slot map node.
///
/// Liveness is the generation lane: generations are unique per shard and
/// start at 1, a released slot's generation is set to 0, so a wheel
/// entry is live iff generation[slot] == entry.generation — one load, no
/// separate flag, correct across slot recycling.
struct StreamArena {
  runtime::SlotAllocator slots;

  std::vector<std::uint64_t> generation;  ///< 0 = slot free
  std::vector<double> rate;               ///< currently reserved (last send)
  std::vector<double> nominal;            ///< cold: admit/depart/finish only
  std::vector<StreamMeta> meta;
  std::vector<std::optional<core::StreamingSmoother>> smoothers;

  /// Cold path only (admission / departure); the advance loop is keyed by
  /// slot and never looks in here.
  std::unordered_map<std::uint32_t, std::uint32_t> id_to_slot;

  /// Binds a slot to `spec`. Caller has already passed the admission
  /// checks, computed `nominal_in`, and — because the smoother's tracer
  /// binds the ambient stream — entered the stream's obs::StreamScope.
  std::uint32_t admit(const StreamSpec& spec, double nominal_in,
                      std::uint64_t generation_in) {
    const std::uint32_t slot = slots.acquire();
    const GopPattern pat(spec.gop_n, spec.gop_m);
    StreamMeta m;
    m.feed_seed = spec.feed_seed;
    m.next_push = 1;
    m.period_ticks = spec.period_ticks;
    m.picture_count = spec.picture_count;
    m.delay_bound = spec.params.D;
    m.pattern = pat;
    m.defaults = spec.defaults;
    if (static_cast<std::size_t>(slot) == generation.size()) {
      // Fresh high water: grow every lane together.
      generation.push_back(generation_in);
      rate.push_back(0.0);
      nominal.push_back(nominal_in);
      meta.push_back(m);
      smoothers.emplace_back(std::in_place, pat, spec.params, spec.defaults);
    } else {
      // Recycled slot: reset in place, keeping buffer capacity.
      generation[slot] = generation_in;
      rate[slot] = 0.0;
      nominal[slot] = nominal_in;
      meta[slot] = m;
      smoothers[slot]->reset(pat, spec.params, spec.defaults);
    }
    id_to_slot.emplace(spec.id, slot);
    return slot;
  }

  /// Frees `slot`; in-flight wheel entries for it go stale (their
  /// generation can never equal 0 or a future admission's generation).
  void release(std::uint32_t id, std::uint32_t slot) {
    generation[slot] = 0;
    id_to_slot.erase(id);
    slots.release(slot);
  }
};

}  // namespace

struct StatmuxService::Shard {
  Shard(int index_in, const StatmuxConfig& config)
      : index(index_in),
        ring(config.ring_capacity),
        epoch_tracer(&obs::Tracer::global(), 0) {}

  const int index;
  runtime::MpscRing<Command> ring;

  StreamArena arena;
  runtime::TimingWheel<WheelEntry> wheel;
  std::uint64_t next_generation = 1;

  double reserved_rate = 0.0;    ///< sum of resident streams' current rates
  double nominal_reserved = 0.0; ///< sum of resident streams' nominal rates

  // Monotone shard-local tallies; read by the driver between epochs
  // (ordered by the pool's wait_idle handoff).
  std::int64_t admitted = 0;
  std::int64_t rejected_duplicate = 0;
  std::int64_t rejected_capacity = 0;
  std::int64_t rejected_rate = 0;
  std::int64_t departed = 0;
  std::int64_t finished = 0;
  std::int64_t pictures = 0;
  std::int64_t decisions = 0;
  std::int64_t dirty_last = 0;
  double busy_seconds = 0.0;  ///< cumulative epoch-task wall time

  // Reused scratch: the steady-state epoch loop allocates nothing.
  std::vector<Command> commands;
  std::vector<WheelEntry> due_scratch;
  std::vector<core::PictureSend> sends_scratch;
  std::vector<StreamSend> collected;
  std::vector<double> rate_batch;  ///< per-epoch totals within one batch

  // Health plane: cumulative shard-local sketches (merged by the driver
  // in shard-index order) and per-epoch integer tallies within one batch
  // (summed by the driver per epoch — integer adds, shard-count
  // invariant). All preallocated/capacity-reusing: zero steady-state
  // allocations.
  obs::QuantileSketch delay_sketch;       ///< per-picture delay d_i (s)
  obs::QuantileSketch slack_sketch;       ///< per-picture D - d_i (s)
  obs::QuantileSketch epoch_wall_sketch;  ///< wall-clock epoch seconds
  std::vector<std::int64_t> queue_batch;     ///< commands drained
  std::vector<std::int64_t> dirty_batch;     ///< streams advanced
  std::vector<std::int64_t> decision_batch;  ///< sends released
  std::vector<std::int64_t> active_batch;    ///< resident at epoch end
  std::vector<std::uint64_t> good_batch;     ///< sends within the bound
  std::vector<std::uint64_t> total_batch;    ///< sends decided

  /// Persistent per-shard tracer (stream 0, picture = shard index): its
  /// seq counter makes successive epoch events distinct.
  obs::StreamTracer epoch_tracer;
};

StatmuxService::StatmuxService(StatmuxConfig config,
                               runtime::ThreadPool* pool)
    : config_(config),
      queue_series_(health_series_options(config)),
      dirty_series_(health_series_options(config)),
      decisions_series_(health_series_options(config)),
      active_series_(health_series_options(config)),
      slo_(config.slo) {
  config_.validate();
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(s, config_));
  }
  if (pool != nullptr) {
    pool_ = pool;
  } else {
    int threads = config_.threads;
    if (threads == 0) {
      const int cores =
          static_cast<int>(std::thread::hardware_concurrency());
      threads = std::min(config_.shards, cores < 1 ? 1 : cores);
    }
    owned_pool_ = std::make_unique<runtime::ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
  bucket_tokens_ = config_.bucket_sigma_bits > 0
                       ? config_.bucket_sigma_bits
                       : config_.link_rate_bps * config_.tick_seconds;

  obs::Registry& registry = obs::Registry::global();
  epochs_counter_ = &registry.counter("statmux.epochs");
  active_gauge_ = &registry.gauge("statmux.streams.active");
  rate_gauge_ = &registry.gauge("statmux.reserved_rate_bps");
  dirty_gauge_ = &registry.gauge("statmux.dirty_streams");
  wheel_gauge_ = &registry.gauge("statmux.wheel.entries");
  occupancy_max_gauge_ = &registry.gauge("statmux.shard.occupancy.max");
  occupancy_imbalance_gauge_ =
      &registry.gauge("statmux.shard.occupancy.imbalance");
  delay_sketch_metric_ = &registry.sketch("statmux.delay_seconds");
  slack_sketch_metric_ = &registry.sketch("statmux.delay_slack_seconds");
  queue_sketch_metric_ = &registry.sketch("statmux.queue_depth");
  dirty_sketch_metric_ = &registry.sketch("statmux.dirty_set");
  epoch_wall_metric_ = &registry.sketch("statmux.epoch_seconds");
  const obs::TimeSeriesOptions series_options = health_series_options(config_);
  queue_series_metric_ =
      &registry.timeseries("statmux.series.queue_depth", series_options);
  dirty_series_metric_ =
      &registry.timeseries("statmux.series.dirty_set", series_options);
  decisions_series_metric_ =
      &registry.timeseries("statmux.series.decisions", series_options);
  active_series_metric_ =
      &registry.timeseries("statmux.series.active_streams", series_options);
}

StatmuxService::~StatmuxService() = default;

int StatmuxService::shard_count() const noexcept {
  return static_cast<int>(shards_.size());
}

bool StatmuxService::admit(const StreamSpec& spec) {
  if (!spec_is_valid(spec)) return false;
  Command command;
  command.kind = Command::Kind::kAdmit;
  command.spec = spec;
  Shard& shard = *shards_[spec.id % shards_.size()];
  return shard.ring.try_push(command);
}

bool StatmuxService::depart(std::uint32_t id) {
  if (id == 0) return false;
  Command command;
  command.kind = Command::Kind::kDepart;
  command.spec.id = id;
  Shard& shard = *shards_[id % shards_.size()];
  return shard.ring.try_push(command);
}

void StatmuxService::run_shard_epoch(Shard& shard, std::int64_t now) {
  const double budget =
      config_.link_rate_bps / static_cast<double>(config_.shards);
  StreamArena& arena = shard.arena;

  // 1. Batch-drain the admission ring and canonicalize: sort by (id, kind
  //    with admit < depart). Any producer interleaving that delivered the
  //    same commands collapses to the same applied sequence (DESIGN.md
  //    §3.6). Two admits of the same id in one drain are unspecified
  //    beyond "exactly one is applied".
  shard.commands.clear();
  shard.ring.drain_into(shard.commands);
  shard.queue_batch.push_back(
      static_cast<std::int64_t>(shard.commands.size()));
  std::sort(shard.commands.begin(), shard.commands.end(),
            [](const Command& x, const Command& y) {
              if (x.spec.id != y.spec.id) return x.spec.id < y.spec.id;
              return static_cast<int>(x.kind) < static_cast<int>(y.kind);
            });

  for (const Command& cmd : shard.commands) {
    const std::uint32_t id = cmd.spec.id;
    if (cmd.kind == Command::Kind::kAdmit) {
      if (arena.id_to_slot.find(id) != arena.id_to_slot.end()) {
        ++shard.rejected_duplicate;
        continue;
      }
      if (static_cast<int>(arena.slots.live()) >=
          config_.max_streams_per_shard) {
        ++shard.rejected_capacity;
        continue;
      }
      const double nominal = cmd.spec.nominal_rate();
      if (shard.nominal_reserved + nominal > budget) {
        ++shard.rejected_rate;
        continue;
      }
      const std::uint64_t generation = shard.next_generation++;
      // The ambient scope attributes the smoother's own trace events
      // (picture scheduled, rate change, ...) to this stream id.
      const obs::StreamScope scope(id);
      const std::uint32_t slot = arena.admit(cmd.spec, nominal, generation);
      shard.nominal_reserved += nominal;
      ++shard.admitted;
      // First arrival: the earliest tick >= now on the stream's cadence.
      std::int64_t due = cmd.spec.phase_ticks;
      if (due < now) {
        const std::int64_t period = cmd.spec.period_ticks;
        due += (now - due + period - 1) / period * period;
      }
      shard.wheel.schedule(due, WheelEntry{due, id, slot, generation});
      obs::StreamTracer(&obs::Tracer::global(), id)
          .emit(obs::EventKind::kStreamAdmit, 0,
                static_cast<double>(now), static_cast<double>(shard.index),
                nominal);
    } else {
      auto it = arena.id_to_slot.find(id);
      if (it == arena.id_to_slot.end()) continue;  // unknown id: no-op
      const std::uint32_t slot = it->second;
      shard.reserved_rate -= arena.rate[slot];
      shard.nominal_reserved -= arena.nominal[slot];
      arena.release(id, slot);  // wheel entries go stale (skipped)
      ++shard.departed;
      obs::StreamTracer(&obs::Tracer::global(), id)
          .emit(obs::EventKind::kStreamDepart, 0,
                static_cast<double>(now), static_cast<double>(shard.index),
                0.0);
    }
  }

  // 2. Advance exactly the streams due this tick — the dirty set. The
  //    wheel yields this tick's bucket; sorting it by (id, generation)
  //    reproduces the former heap's canonical (due, id, generation) pop
  //    order exactly, since every collected entry has due == now. The
  //    walk itself is slot-indexed lane reads — no hashing — with the
  //    next stream prefetched while the current one decides.
  shard.due_scratch.clear();
  shard.wheel.collect(now, shard.due_scratch);
  // In steady state the bucket comes back already canonical (it was
  // filled in last period's advance order, which was sorted); the
  // is_sorted probe turns the per-tick sort into a linear scan then.
  const auto canonical_order = [](const WheelEntry& x, const WheelEntry& y) {
    if (x.id != y.id) return x.id < y.id;
    return x.generation < y.generation;
  };
  if (!std::is_sorted(shard.due_scratch.begin(), shard.due_scratch.end(),
                      canonical_order)) {
    std::sort(shard.due_scratch.begin(), shard.due_scratch.end(),
              canonical_order);
  }

  std::int64_t dirty = 0;
  std::int64_t epoch_decisions = 0;
  std::uint64_t epoch_good = 0;
  std::uint64_t epoch_total = 0;
  const std::size_t due_count = shard.due_scratch.size();
  for (std::size_t k = 0; k < due_count; ++k) {
    if (k + 1 < due_count) {
      const std::uint32_t ahead = shard.due_scratch[k + 1].slot;
      prefetch(&arena.generation[ahead]);
      prefetch(&arena.meta[ahead]);
      prefetch(&arena.smoothers[ahead]);
    }
    if (k + 3 < due_count) {
      prefetch(&arena.generation[shard.due_scratch[k + 3].slot]);
    }
    const WheelEntry entry = shard.due_scratch[k];
    const std::uint32_t slot = entry.slot;
    if (arena.generation[slot] != entry.generation) {
      continue;  // departed (possibly readmitted) while scheduled: stale
    }
    ++dirty;

    core::StreamingSmoother& smoother = *arena.smoothers[slot];
    StreamMeta& meta = arena.meta[slot];
    const int index = meta.next_push;
    smoother.push(synthetic_picture_size(meta.feed_seed, index,
                                         meta.pattern.type_of(index),
                                         meta.defaults));
    ++shard.pictures;
    const bool last_picture =
        meta.picture_count > 0 && index >= meta.picture_count;
    meta.next_push = index + 1;
    if (last_picture) smoother.finish();

    shard.sends_scratch.clear();
    const int released = smoother.drain_into(shard.sends_scratch);
    shard.decisions += released;
    epoch_decisions += released;
    for (const core::PictureSend& send : shard.sends_scratch) {
      // Same deltas, same order as the stream's own schedule: the shard
      // total stays a fixed-order double sum.
      shard.reserved_rate += send.rate - arena.rate[slot];
      arena.rate[slot] = send.rate;
      // Health plane: per-picture delay and slack into the cumulative
      // shard sketches (integer bucket increments), plus the SLO tally.
      // A negative slack clamps into bucket 0 and counts as `clamped` —
      // the sketch's own delay-bound-violation counter.
      shard.delay_sketch.observe(send.delay);
      shard.slack_sketch.observe(slack_value(send.delay, meta.delay_bound));
      ++epoch_total;
      epoch_good +=
          send.delay <= meta.delay_bound + kDelayTolerance ? 1 : 0;
      if (config_.collect_sends) {
        shard.collected.push_back(StreamSend{entry.id, send});
      }
    }

    if (smoother.done()) {
      shard.reserved_rate -= arena.rate[slot];
      shard.nominal_reserved -= arena.nominal[slot];
      ++shard.finished;
      obs::StreamTracer(&obs::Tracer::global(), entry.id)
          .emit(obs::EventKind::kStreamDepart, 0,
                static_cast<double>(now),
                static_cast<double>(shard.index), 1.0);
      arena.release(entry.id, slot);
    } else {
      const std::int64_t due = now + meta.period_ticks;
      shard.wheel.schedule(due, WheelEntry{due, entry.id, slot,
                                           entry.generation});
    }
  }
  shard.dirty_last = dirty;
  shard.dirty_batch.push_back(dirty);
  shard.decision_batch.push_back(epoch_decisions);
  shard.active_batch.push_back(
      static_cast<std::int64_t>(arena.slots.live()));
  shard.good_batch.push_back(epoch_good);
  shard.total_batch.push_back(epoch_total);

  shard.epoch_tracer.emit(obs::EventKind::kMuxEpoch,
                          static_cast<std::uint32_t>(shard.index),
                          static_cast<double>(now),
                          static_cast<double>(dirty), shard.reserved_rate,
                          static_cast<double>(arena.slots.live()));
}

void StatmuxService::run_epoch() { run_epochs(1); }

void StatmuxService::run_epochs(int count) {
  if (count <= 0) return;
  batch_count_ = count;  // shard tasks read these; tick_ advances after

  // Parallel phase: each shard runs its WHOLE batch in one pool task —
  // pool dispatch is paid once per batch, not once per epoch — recording
  // its per-epoch reserved-rate totals for the reduction below. The task
  // captures only `this` (batch bounds travel via batch_count_/tick_):
  // a one-word closure stays inside std::function's inline buffer, which
  // keeps the steady-state epoch loop allocation-free.
  runtime::parallel_for(*pool_, shard_count(), [this](int s) {
    Shard& shard = *shards_[static_cast<std::size_t>(s)];
    const auto begin = std::chrono::steady_clock::now();
    shard.rate_batch.clear();
    shard.queue_batch.clear();
    shard.dirty_batch.clear();
    shard.decision_batch.clear();
    shard.active_batch.clear();
    shard.good_batch.clear();
    shard.total_batch.clear();
    auto epoch_begin = begin;
    for (int e = 0; e < batch_count_; ++e) {
      run_shard_epoch(shard, tick_ + e);
      shard.rate_batch.push_back(shard.reserved_rate);
      const auto epoch_end = std::chrono::steady_clock::now();
      shard.epoch_wall_sketch.observe(
          std::chrono::duration<double>(epoch_end - epoch_begin).count());
      epoch_begin = epoch_end;
    }
    shard.busy_seconds +=
        std::chrono::duration<double>(epoch_begin - begin).count();
  });

  // Reduce in shard-index order with the element-wise SIMD accumulate:
  // element e receives ((0 + shard0[e]) + shard1[e]) + ... — the
  // identical IEEE operation sequence the scalar per-epoch loop computed,
  // at every SIMD tier (core/series_ops.h), so the series is bitwise
  // reproducible for any thread count, tier, and batch size.
  totals_scratch_.assign(static_cast<std::size_t>(count), 0.0);
  for (const auto& shard : shards_) {
    core::detail::add_series(totals_scratch_.data(),
                             shard->rate_batch.data(),
                             static_cast<std::size_t>(count));
  }

  // Health reduction, per epoch BEFORE the policer advances tick_: the
  // per-shard per-epoch tallies are summed over shards in index order —
  // integer additions, so the global totals (and everything observed from
  // them) are invariant under re-partitioning. The sketches and series
  // observe these GLOBAL totals at the driver, never per-shard values: a
  // per-shard-per-epoch distribution would bake the shard count into the
  // snapshot bytes.
  for (int e = 0; e < count; ++e) {
    const std::int64_t epoch = tick_ + e;
    const std::size_t k = static_cast<std::size_t>(e);
    std::int64_t queue_total = 0;
    std::int64_t dirty_total = 0;
    std::int64_t decision_total = 0;
    std::int64_t active_total = 0;
    std::uint64_t good_total = 0;
    std::uint64_t sends_total = 0;
    for (const auto& shard : shards_) {
      queue_total += shard->queue_batch[k];
      dirty_total += shard->dirty_batch[k];
      decision_total += shard->decision_batch[k];
      active_total += shard->active_batch[k];
      good_total += shard->good_batch[k];
      sends_total += shard->total_batch[k];
    }
    queue_sketch_.observe(static_cast<double>(queue_total));
    dirty_sketch_.observe(static_cast<double>(dirty_total));
    queue_series_.record(epoch, static_cast<double>(queue_total));
    dirty_series_.record(epoch, static_cast<double>(dirty_total));
    decisions_series_.record(epoch, static_cast<double>(decision_total));
    active_series_.record(epoch, static_cast<double>(active_total));
    queue_series_metric_->record(epoch, static_cast<double>(queue_total));
    dirty_series_metric_->record(epoch, static_cast<double>(dirty_total));
    decisions_series_metric_->record(epoch,
                                     static_cast<double>(decision_total));
    active_series_metric_->record(epoch, static_cast<double>(active_total));
    slo_.record_epoch(epoch, good_total, sends_total);
  }

  const double sigma = config_.bucket_sigma_bits > 0
                           ? config_.bucket_sigma_bits
                           : config_.link_rate_bps * config_.tick_seconds;
  for (int e = 0; e < count; ++e) {
    const double total = totals_scratch_[static_cast<std::size_t>(e)];
    if (config_.rate_history_limit == 0 ||
        rate_series_.size() < config_.rate_history_limit) {
      rate_series_.push_back(total);
    } else {
      rate_series_[static_cast<std::size_t>(tick_) %
                   config_.rate_history_limit] = total;
    }
    last_rate_ = total;

    // Link policer: charge this epoch's reserved bits against the bucket.
    bucket_tokens_ = std::min(
        sigma,
        bucket_tokens_ + config_.link_rate_bps * config_.tick_seconds);
    const double bits = total * config_.tick_seconds;
    if (bits <= bucket_tokens_) {
      bucket_tokens_ -= bits;
    } else {
      ++overshoot_epochs_;
    }

    ++tick_;
  }

  // Telemetry reflects the batch's final epoch — identical to what
  // epoch-at-a-time execution leaves behind. All handles are pre-resolved
  // (constructor), so this is a handful of atomic stores.
  epochs_counter_->add(static_cast<std::uint64_t>(count));
  const double active = static_cast<double>(active_streams());
  active_gauge_->set(active);
  rate_gauge_->set(last_rate_);
  dirty_gauge_->set(static_cast<double>(last_dirty_streams()));
  wheel_gauge_->set(static_cast<double>(wheel_entries()));
  std::int64_t max_occupancy = 0;
  for (const auto& shard : shards_) {
    max_occupancy = std::max(
        max_occupancy, static_cast<std::int64_t>(shard->arena.slots.live()));
  }
  const double mean = active / static_cast<double>(shard_count());
  occupancy_max_gauge_->set(static_cast<double>(max_occupancy));
  occupancy_imbalance_gauge_->set(
      mean > 0.0 ? static_cast<double>(max_occupancy) / mean : 1.0);

  // Rebuild the merged per-picture sketches from the cumulative shard
  // sketches — reset + merge in shard-index order, so a batch never
  // double-counts — and publish the registry mirrors wholesale (assign,
  // never merge: scrapes between batches see exactly one copy of the
  // population).
  merged_delay_.reset();
  merged_slack_.reset();
  merged_epoch_wall_.reset();
  for (const auto& shard : shards_) {
    merged_delay_.merge(shard->delay_sketch);
    merged_slack_.merge(shard->slack_sketch);
    merged_epoch_wall_.merge(shard->epoch_wall_sketch);
  }
  delay_sketch_metric_->assign(merged_delay_);
  slack_sketch_metric_->assign(merged_slack_);
  queue_sketch_metric_->assign(queue_sketch_);
  dirty_sketch_metric_->assign(dirty_sketch_);
  epoch_wall_metric_->assign(merged_epoch_wall_);
  obs::Registry::global().set_time(static_cast<double>(tick_) *
                                   config_.tick_seconds);
}

std::int64_t StatmuxService::active_streams() const noexcept {
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    total += static_cast<std::int64_t>(shard->arena.slots.live());
  }
  return total;
}

double StatmuxService::reserved_rate() const noexcept { return last_rate_; }

void StatmuxService::rate_history(std::vector<double>& out) const {
  out.clear();
  const std::size_t limit = config_.rate_history_limit;
  if (limit == 0 || rate_series_.size() < limit) {
    out.assign(rate_series_.begin(), rate_series_.end());
    return;
  }
  // The ring is full: the slot the next epoch would overwrite is the
  // oldest retained total.
  const std::size_t start = static_cast<std::size_t>(tick_) % limit;
  out.reserve(limit);
  for (std::size_t k = 0; k < limit; ++k) {
    out.push_back(rate_series_[(start + k) % limit]);
  }
}

std::int64_t StatmuxService::last_dirty_streams() const noexcept {
  std::int64_t total = 0;
  for (const auto& shard : shards_) total += shard->dirty_last;
  return total;
}

std::int64_t StatmuxService::wheel_entries() const noexcept {
  std::int64_t total = 0;
  for (const auto& shard : shards_) total += shard->wheel.size();
  return total;
}

std::int64_t StatmuxService::shard_stream_count(int shard) const {
  return static_cast<std::int64_t>(
      shards_[static_cast<std::size_t>(shard)]->arena.slots.live());
}

double StatmuxService::shard_busy_seconds(int shard) const {
  return shards_[static_cast<std::size_t>(shard)]->busy_seconds;
}

StatmuxStats StatmuxService::stats() const {
  StatmuxStats stats;
  for (const auto& shard : shards_) {
    stats.admitted += shard->admitted;
    stats.rejected_duplicate += shard->rejected_duplicate;
    stats.rejected_capacity += shard->rejected_capacity;
    stats.rejected_rate += shard->rejected_rate;
    stats.departed += shard->departed;
    stats.finished += shard->finished;
    stats.pictures += shard->pictures;
    stats.decisions += shard->decisions;
  }
  stats.overshoot_epochs = overshoot_epochs_;
  return stats;
}

const std::vector<StreamSend>& StatmuxService::collected_sends(
    int shard) const {
  return shards_[static_cast<std::size_t>(shard)]->collected;
}

std::string StatmuxService::health_json(bool per_shard) const {
  obs::JsonWriter json;
  json.begin_object();
  json.key("tick").value(tick_);
  json.key("sketches").begin_object();
  json.key("delay_seconds");
  obs::write_sketch_json(json, merged_delay_);
  json.key("delay_slack_seconds");
  obs::write_sketch_json(json, merged_slack_);
  json.key("queue_depth");
  obs::write_sketch_json(json, queue_sketch_);
  json.key("dirty_set");
  obs::write_sketch_json(json, dirty_sketch_);
  json.end_object();

  std::vector<obs::TimeSeriesWindow> windows;
  std::vector<obs::QuantileSketch> window_sketches;
  const auto emit_series = [&](const char* name,
                               const obs::TimeSeries& series) {
    series.snapshot(windows, &window_sketches);
    json.key(name);
    obs::write_series_json(json, series.options(), windows,
                           &window_sketches);
  };
  json.key("series").begin_object();
  emit_series("queue_depth", queue_series_);
  emit_series("dirty_set", dirty_series_);
  emit_series("decisions", decisions_series_);
  emit_series("active_streams", active_series_);
  json.end_object();

  json.key("slo");
  obs::write_slo_json(json, slo_.spec(), slo_.state());

  // Per-shard detail (the lsm_top drill-down view): cumulative per-shard
  // delay/slack sketches plus the wall-clock epoch-latency sketch. The
  // shard count and wall-clock buckets make this section run-specific, so
  // it is excluded from the canonical (per_shard = false) form the
  // determinism gate compares.
  if (per_shard) {
    json.key("shards").begin_array();
    for (const auto& shard : shards_) {
      json.begin_object();
      json.key("shard").value(shard->index);
      json.key("streams").value(
          static_cast<std::int64_t>(shard->arena.slots.live()));
      json.key("delay_seconds");
      obs::write_sketch_json(json, shard->delay_sketch);
      json.key("delay_slack_seconds");
      obs::write_sketch_json(json, shard->slack_sketch);
      json.key("epoch_seconds");
      obs::write_sketch_json(json, shard->epoch_wall_sketch);
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  return json.take();
}

}  // namespace lsm::net
