#include "net/statmux.h"

#include <algorithm>
#include <cstddef>
#include <queue>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/streaming.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "runtime/mpsc_ring.h"
#include "runtime/pool.h"
#include "sim/rng.h"

namespace lsm::net {

using lsm::trace::Bits;
using lsm::trace::GopPattern;
using lsm::trace::PictureType;

Bits synthetic_picture_size(std::uint64_t seed, int index, PictureType type,
                            const core::DefaultSizes& defaults) {
  // One splitmix64 step over (seed, index): a pure hash, so the feed can
  // be replayed anywhere without carrying generator state.
  std::uint64_t state =
      seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(index));
  const std::uint64_t word = sim::splitmix64(state);
  // ±25% modulation from the top 53 bits.
  const double unit =
      static_cast<double>(word >> 11) * (1.0 / 9007199254740992.0);
  const double modulated =
      static_cast<double>(defaults.of(type)) * (0.75 + 0.5 * unit);
  const Bits size = static_cast<Bits>(modulated);
  return size < 1 ? 1 : size;
}

double StreamSpec::nominal_rate() const {
  const GopPattern pattern(gop_n, gop_m);
  Bits per_pattern = 0;
  for (int i = 1; i <= pattern.N(); ++i) {
    per_pattern += defaults.of(pattern.type_of(i));
  }
  return static_cast<double>(per_pattern) /
         (static_cast<double>(pattern.N()) * params.tau);
}

void StatmuxConfig::validate() const {
  if (shards < 1) throw std::invalid_argument("statmux: shards must be >= 1");
  if (ring_capacity < 1) {
    throw std::invalid_argument("statmux: ring_capacity must be >= 1");
  }
  if (max_streams_per_shard < 1) {
    throw std::invalid_argument("statmux: shard capacity must be >= 1");
  }
  if (link_rate_bps <= 0) {
    throw std::invalid_argument("statmux: link rate must be > 0");
  }
  if (bucket_sigma_bits < 0) {
    throw std::invalid_argument("statmux: bucket depth must be >= 0");
  }
  if (tick_seconds <= 0) {
    throw std::invalid_argument("statmux: tick must be > 0");
  }
  if (threads < 0) {
    throw std::invalid_argument("statmux: threads must be >= 0");
  }
}

namespace {

struct Command {
  enum class Kind : std::uint8_t { kAdmit = 0, kDepart = 1 };
  Kind kind = Kind::kAdmit;
  StreamSpec spec;  ///< depart uses spec.id only
};

/// Cheap spec screening done on the admitting thread, so shard tasks never
/// see a spec whose GopPattern construction or params validation throws.
bool spec_is_valid(const StreamSpec& spec) {
  if (spec.id == 0) return false;
  if (spec.gop_n < 1 || spec.gop_m < 1 || spec.gop_m > spec.gop_n ||
      spec.gop_n % spec.gop_m != 0) {
    return false;
  }
  if (spec.period_ticks < 1 || spec.phase_ticks < 0 ||
      spec.picture_count < 0) {
    return false;
  }
  try {
    spec.params.validate();
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

struct CalendarEntry {
  std::int64_t due = 0;
  std::uint32_t id = 0;
  std::uint64_t generation = 0;

  /// Total order (due, id, generation): the pop sequence within one tick
  /// is the canonical advance order, independent of insertion history.
  bool operator>(const CalendarEntry& other) const noexcept {
    if (due != other.due) return due > other.due;
    if (id != other.id) return id > other.id;
    return generation > other.generation;
  }
};

struct StreamState {
  StreamState(const StreamSpec& spec_in, std::uint64_t generation_in)
      : spec(spec_in),
        pattern(spec_in.gop_n, spec_in.gop_m),
        smoother(pattern, spec_in.params, spec_in.defaults),
        nominal(spec_in.nominal_rate()),
        generation(generation_in) {}

  StreamSpec spec;
  GopPattern pattern;
  core::StreamingSmoother smoother;
  int next_push = 1;    ///< next picture index to feed
  double rate = 0.0;    ///< currently reserved rate (last decision)
  double nominal = 0.0;
  std::uint64_t generation = 0;  ///< matches live calendar entries
};

}  // namespace

struct StatmuxService::Shard {
  Shard(int index_in, const StatmuxConfig& config)
      : index(index_in),
        ring(config.ring_capacity),
        epoch_tracer(&obs::Tracer::global(), 0) {}

  const int index;
  runtime::MpscRing<Command> ring;

  std::unordered_map<std::uint32_t, StreamState> streams;
  std::priority_queue<CalendarEntry, std::vector<CalendarEntry>,
                      std::greater<CalendarEntry>>
      calendar;
  std::uint64_t next_generation = 1;

  double reserved_rate = 0.0;    ///< sum of resident streams' current rates
  double nominal_reserved = 0.0; ///< sum of resident streams' nominal rates

  // Monotone shard-local tallies; read by the driver between epochs
  // (ordered by the pool's wait_idle handoff).
  std::int64_t admitted = 0;
  std::int64_t rejected_duplicate = 0;
  std::int64_t rejected_capacity = 0;
  std::int64_t rejected_rate = 0;
  std::int64_t departed = 0;
  std::int64_t finished = 0;
  std::int64_t pictures = 0;
  std::int64_t decisions = 0;
  std::int64_t dirty_last = 0;

  // Reused scratch: the steady-state epoch loop allocates nothing.
  std::vector<Command> commands;
  std::vector<core::PictureSend> sends_scratch;
  std::vector<StreamSend> collected;

  /// Persistent per-shard tracer (stream 0, picture = shard index): its
  /// seq counter makes successive epoch events distinct.
  obs::StreamTracer epoch_tracer;
};

StatmuxService::StatmuxService(StatmuxConfig config,
                               runtime::ThreadPool* pool)
    : config_(config) {
  config_.validate();
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(s, config_));
  }
  if (pool != nullptr) {
    pool_ = pool;
  } else {
    int threads = config_.threads;
    if (threads == 0) {
      const int cores =
          static_cast<int>(std::thread::hardware_concurrency());
      threads = std::min(config_.shards, cores < 1 ? 1 : cores);
    }
    owned_pool_ = std::make_unique<runtime::ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
  bucket_tokens_ = config_.bucket_sigma_bits > 0
                       ? config_.bucket_sigma_bits
                       : config_.link_rate_bps * config_.tick_seconds;
}

StatmuxService::~StatmuxService() = default;

int StatmuxService::shard_count() const noexcept {
  return static_cast<int>(shards_.size());
}

bool StatmuxService::admit(const StreamSpec& spec) {
  if (!spec_is_valid(spec)) return false;
  Command command;
  command.kind = Command::Kind::kAdmit;
  command.spec = spec;
  Shard& shard = *shards_[spec.id % shards_.size()];
  return shard.ring.try_push(command);
}

bool StatmuxService::depart(std::uint32_t id) {
  if (id == 0) return false;
  Command command;
  command.kind = Command::Kind::kDepart;
  command.spec.id = id;
  Shard& shard = *shards_[id % shards_.size()];
  return shard.ring.try_push(command);
}

void StatmuxService::run_shard_epoch(Shard& shard) {
  const std::int64_t now = tick_;
  const double budget =
      config_.link_rate_bps / static_cast<double>(config_.shards);

  // 1. Drain the admission ring and canonicalize: sort by (id, kind with
  //    admit < depart). Any producer interleaving that delivered the same
  //    commands collapses to the same applied sequence (DESIGN.md §3.6).
  //    Two admits of the same id in one drain are unspecified beyond
  //    "exactly one is applied".
  shard.commands.clear();
  Command command;
  while (shard.ring.try_pop(command)) shard.commands.push_back(command);
  std::sort(shard.commands.begin(), shard.commands.end(),
            [](const Command& x, const Command& y) {
              if (x.spec.id != y.spec.id) return x.spec.id < y.spec.id;
              return static_cast<int>(x.kind) < static_cast<int>(y.kind);
            });

  for (const Command& cmd : shard.commands) {
    const std::uint32_t id = cmd.spec.id;
    if (cmd.kind == Command::Kind::kAdmit) {
      if (shard.streams.find(id) != shard.streams.end()) {
        ++shard.rejected_duplicate;
        continue;
      }
      if (static_cast<int>(shard.streams.size()) >=
          config_.max_streams_per_shard) {
        ++shard.rejected_capacity;
        continue;
      }
      const double nominal = cmd.spec.nominal_rate();
      if (shard.nominal_reserved + nominal > budget) {
        ++shard.rejected_rate;
        continue;
      }
      const std::uint64_t generation = shard.next_generation++;
      // The ambient scope attributes the smoother's own trace events
      // (picture scheduled, rate change, ...) to this stream id.
      const obs::StreamScope scope(id);
      auto [it, inserted] =
          shard.streams.try_emplace(id, cmd.spec, generation);
      (void)inserted;
      shard.nominal_reserved += nominal;
      ++shard.admitted;
      // First arrival: the earliest tick >= now on the stream's cadence.
      std::int64_t due = cmd.spec.phase_ticks;
      if (due < now) {
        const std::int64_t period = cmd.spec.period_ticks;
        due += (now - due + period - 1) / period * period;
      }
      shard.calendar.push(CalendarEntry{due, id, generation});
      obs::StreamTracer(&obs::Tracer::global(), id)
          .emit(obs::EventKind::kStreamAdmit, 0,
                static_cast<double>(now), static_cast<double>(shard.index),
                it->second.nominal);
    } else {
      auto it = shard.streams.find(id);
      if (it == shard.streams.end()) continue;  // unknown id: no-op
      shard.reserved_rate -= it->second.rate;
      shard.nominal_reserved -= it->second.nominal;
      shard.streams.erase(it);  // calendar entries go stale (skipped)
      ++shard.departed;
      obs::StreamTracer(&obs::Tracer::global(), id)
          .emit(obs::EventKind::kStreamDepart, 0,
                static_cast<double>(now), static_cast<double>(shard.index),
                0.0);
    }
  }

  // 2. Advance exactly the streams due this tick, in calendar order —
  //    the dirty set. Resident streams with no arrival cost nothing.
  std::int64_t dirty = 0;
  while (!shard.calendar.empty() && shard.calendar.top().due <= now) {
    const CalendarEntry entry = shard.calendar.top();
    shard.calendar.pop();
    auto it = shard.streams.find(entry.id);
    if (it == shard.streams.end() ||
        it->second.generation != entry.generation) {
      continue;  // departed (possibly readmitted) while scheduled: stale
    }
    StreamState& state = it->second;
    ++dirty;

    state.smoother.push(synthetic_picture_size(
        state.spec.feed_seed, state.next_push,
        state.pattern.type_of(state.next_push), state.spec.defaults));
    ++shard.pictures;
    const bool last_picture = state.spec.picture_count > 0 &&
                              state.next_push >= state.spec.picture_count;
    ++state.next_push;
    if (last_picture) state.smoother.finish();

    shard.sends_scratch.clear();
    const int released = state.smoother.drain_into(shard.sends_scratch);
    shard.decisions += released;
    for (const core::PictureSend& send : shard.sends_scratch) {
      // Same deltas, same order as the stream's own schedule: the shard
      // total stays a fixed-order double sum.
      shard.reserved_rate += send.rate - state.rate;
      state.rate = send.rate;
      if (config_.collect_sends) {
        shard.collected.push_back(StreamSend{entry.id, send});
      }
    }

    if (state.smoother.done()) {
      shard.reserved_rate -= state.rate;
      shard.nominal_reserved -= state.nominal;
      ++shard.finished;
      obs::StreamTracer(&obs::Tracer::global(), entry.id)
          .emit(obs::EventKind::kStreamDepart, 0,
                static_cast<double>(now),
                static_cast<double>(shard.index), 1.0);
      shard.streams.erase(it);
    } else {
      shard.calendar.push(CalendarEntry{now + state.spec.period_ticks,
                                        entry.id, entry.generation});
    }
  }
  shard.dirty_last = dirty;

  shard.epoch_tracer.emit(obs::EventKind::kMuxEpoch,
                          static_cast<std::uint32_t>(shard.index),
                          static_cast<double>(now),
                          static_cast<double>(dirty), shard.reserved_rate,
                          static_cast<double>(shard.streams.size()));
}

void StatmuxService::run_epoch() {
  runtime::parallel_for(*pool_, shard_count(),
                        [this](int s) { run_shard_epoch(*shards_[s]); });

  // Reduce in shard-index order: a fixed-order double sum, bitwise
  // reproducible for any thread count.
  double total = 0.0;
  for (const auto& shard : shards_) total += shard->reserved_rate;
  if (config_.rate_history_limit == 0 ||
      rate_series_.size() < config_.rate_history_limit) {
    rate_series_.push_back(total);
  } else {
    rate_series_[static_cast<std::size_t>(tick_) %
                 config_.rate_history_limit] = total;
  }
  last_rate_ = total;

  // Link policer: charge this epoch's reserved bits against the bucket.
  const double sigma = config_.bucket_sigma_bits > 0
                           ? config_.bucket_sigma_bits
                           : config_.link_rate_bps * config_.tick_seconds;
  bucket_tokens_ = std::min(
      sigma, bucket_tokens_ + config_.link_rate_bps * config_.tick_seconds);
  const double bits = total * config_.tick_seconds;
  if (bits <= bucket_tokens_) {
    bucket_tokens_ -= bits;
  } else {
    ++overshoot_epochs_;
  }

  ++tick_;

  obs::Registry& registry = obs::Registry::global();
  registry.counter("statmux.epochs").add(1);
  registry.gauge("statmux.streams.active")
      .set(static_cast<double>(active_streams()));
  registry.gauge("statmux.reserved_rate_bps").set(total);
  registry.gauge("statmux.dirty_streams")
      .set(static_cast<double>(last_dirty_streams()));
}

std::int64_t StatmuxService::active_streams() const noexcept {
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    total += static_cast<std::int64_t>(shard->streams.size());
  }
  return total;
}

double StatmuxService::reserved_rate() const noexcept { return last_rate_; }

void StatmuxService::rate_history(std::vector<double>& out) const {
  out.clear();
  const std::size_t limit = config_.rate_history_limit;
  if (limit == 0 || rate_series_.size() < limit) {
    out.assign(rate_series_.begin(), rate_series_.end());
    return;
  }
  // The ring is full: the slot the next epoch would overwrite is the
  // oldest retained total.
  const std::size_t start = static_cast<std::size_t>(tick_) % limit;
  out.reserve(limit);
  for (std::size_t k = 0; k < limit; ++k) {
    out.push_back(rate_series_[(start + k) % limit]);
  }
}

std::int64_t StatmuxService::last_dirty_streams() const noexcept {
  std::int64_t total = 0;
  for (const auto& shard : shards_) total += shard->dirty_last;
  return total;
}

StatmuxStats StatmuxService::stats() const {
  StatmuxStats stats;
  for (const auto& shard : shards_) {
    stats.admitted += shard->admitted;
    stats.rejected_duplicate += shard->rejected_duplicate;
    stats.rejected_capacity += shard->rejected_capacity;
    stats.rejected_rate += shard->rejected_rate;
    stats.departed += shard->departed;
    stats.finished += shard->finished;
    stats.pictures += shard->pictures;
    stats.decisions += shard->decisions;
  }
  stats.overshoot_epochs = overshoot_epochs_;
  return stats;
}

const std::vector<StreamSend>& StatmuxService::collected_sends(
    int shard) const {
  return shards_[static_cast<std::size_t>(shard)]->collected;
}

}  // namespace lsm::net
