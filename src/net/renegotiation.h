// Renegotiated-CBR channel planning: turning the smoother's rate function
// into a network reservation.
//
// The paper counts "number of rate changes" as a smoothness measure because
// each change is a signalling event on a real network — a channel rate
// renegotiation. This module makes that cost concrete: given a rate
// schedule r(t), plan a piecewise-constant reservation R(t) >= r(t) that a
// switch could actually honor, subject to a minimum hold time between
// renegotiations. The planner trades renegotiation frequency against
// over-reservation (reserved-but-unused capacity), and the bench shows that
// a smoothed stream needs both far fewer renegotiations and far less
// over-reservation than the raw VBR stream.
#pragma once

#include "core/schedule.h"

namespace lsm::net {

struct RenegotiationPolicy {
  double min_hold = 0.5;  ///< minimum seconds between renegotiations (> 0)
  double headroom = 1.02; ///< reserve headroom * observed need (>= 1)
  /// Renegotiate down when the upcoming window needs less than this
  /// fraction of the current reservation (in [0, 1]; 0 disables releases).
  double release_threshold = 0.7;
};

struct ReservationResult {
  core::RateSchedule reservation;  ///< R(t), covers the schedule's span
  int renegotiations = 0;          ///< rate changes after the initial setup
  core::Rate peak_reserved = 0.0;
  /// Integral of R divided by integral of r, minus 1: wasted capacity.
  double over_reservation = 0.0;
};

/// Plans a reservation for `schedule`. Guarantees R(t) >= r(t) everywhere
/// within the schedule's span (verified by tests). Throws
/// std::invalid_argument on a bad policy or empty schedule.
ReservationResult plan_reservation(const core::RateSchedule& schedule,
                                   const RenegotiationPolicy& policy);

}  // namespace lsm::net
