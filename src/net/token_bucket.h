// Token-bucket (sigma, rho) traffic characterization.
//
// A stream conforming to a token bucket with depth sigma and drain rate rho
// never needs more than sigma bits of buffer at a server of rate rho. The
// burstiness curve sigma(rho) — the minimal conforming depth for each rho —
// makes the value of smoothing quantitative: a smoothed schedule's curve
// collapses toward zero for every rho at or above the per-pattern peak,
// while the raw VBR stream needs nearly a whole I picture of depth.
#pragma once

#include <vector>

#include "core/schedule.h"

namespace lsm::net {

/// Minimal bucket depth (bits) at drain rate `rho` for the given rate
/// function: the peak backlog of a virtual queue fed by the schedule and
/// drained at rho. Requires rho > 0.
double min_bucket_depth(const core::RateSchedule& schedule, double rho);

/// Burstiness curve sampled at the given drain rates.
struct BurstinessPoint {
  double rho = 0.0;    ///< bits/s
  double sigma = 0.0;  ///< bits
};
std::vector<BurstinessPoint> burstiness_curve(
    const core::RateSchedule& schedule, const std::vector<double>& rhos);

/// Online token-bucket policer: consume() returns false (non-conforming)
/// when the bucket lacks tokens for the requested bits.
class TokenBucket {
 public:
  /// Requires sigma >= 0 and rho > 0. The bucket starts full.
  TokenBucket(double sigma_bits, double rho_bps);

  /// Advances to `time` (monotone) and attempts to consume `bits`.
  bool consume(double time, double bits);

  double tokens() const noexcept { return tokens_; }

 private:
  double sigma_;
  double rho_;
  double tokens_;
  double last_time_ = 0.0;
};

}  // namespace lsm::net
