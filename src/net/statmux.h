// StatmuxService: a sharded statistical multiplexer of smoothed VBR
// streams — the paper's §6 reservation model grown from a study harness
// into a long-running service sustaining O(100k–1M) concurrent streams.
//
// Architecture (DESIGN.md §3.6):
//
//   * Shard-per-core ownership. Streams are partitioned over a FIXED
//     number of logical shards (id % shards); each shard's state is
//     touched only by that shard's epoch task, so shard-local work needs
//     no locks and no atomics. The shard count is configuration, not
//     hardware: running the same config on 1 thread or N threads executes
//     the same per-shard programs, only scheduled differently.
//
//   * Lock-free admission. Any thread admits or departs a stream by
//     pushing a command into the owning shard's bounded MPSC ring
//     (runtime/mpsc_ring.h); a full ring rejects with explicit
//     back-pressure. At epoch start the shard drains its ring and sorts
//     the batch by (stream id, kind) — the canonical admission order —
//     so the applied sequence is independent of how producer CASes
//     interleaved. That sort is the whole determinism argument for
//     admission: any interleaving drains to the same multiset, and the
//     same multiset applies in the same order.
//
//   * Epoch-driven advance with dirty-set recomputation. Each epoch
//     (tick) a shard advances ONLY the streams whose arrival frontier
//     moves this tick. The calendar is a hierarchical timing wheel
//     (runtime/timing_wheel.h, O(1) amortized schedule/advance instead of
//     the former heap's O(log residency)); the tick's bucket is sorted by
//     (id, generation), which — every collected entry being due exactly
//     now — reproduces the old heap's canonical (due, id, generation) pop
//     order bit for bit. Per-epoch cost scales with the dirty set, not
//     with the resident stream count. Departures during an in-flight
//     schedule are lazy: the wheel entry's generation goes stale and is
//     skipped when collected.
//
//   * Slab/SoA stream state. Per-stream state lives in a slab-backed
//     structure-of-arrays arena indexed by dense slots from a free-list
//     (runtime/slab_arena.h): hot scalar fields (generation, reserved
//     rate, feed cursor, cadence) each occupy one contiguous lane, and
//     the StreamingSmoother objects sit in a parallel slab whose buffers
//     are reset in place — not reallocated — when a slot is recycled.
//     Wheel entries carry their slot, so the advance loop does ZERO hash
//     lookups and prefetches the next stream's lanes while deciding the
//     current one; the id->slot map is touched only by admission and
//     departure.
//
//   * Reservation aggregation. Each decided picture re-reserves its
//     stream's rate; the shard maintains its reserved-rate total by
//     applying the same deltas the schedule does, in schedule order.
//     run_epochs(count) runs each shard's whole batch in ONE pool task
//     (amortizing dispatch), each shard recording its per-epoch totals
//     into a batch buffer; the driver then merges the buffers in
//     shard-index order with the SIMD element-wise accumulate
//     core/series_ops.h — per epoch, the identical fixed-order double sum
//     the scalar per-epoch loop computed, so the series is bitwise
//     reproducible at every SIMD tier, thread count, and batch size
//     (run_epochs(n) == n x run_epoch(), tested). The merged totals feed
//     the link model: a token-bucket policer (sigma, link rate) charges
//     each epoch's reserved bits and counts overshoot epochs.
//
// Determinism contract (enforced by StatmuxDifferential under TSan):
// schedules, the aggregate rate series, and deterministic trace bytes are
// identical for 1 vs N pool threads and for any admission interleaving
// that delivers the same commands by the same epoch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/schedule.h"
#include "obs/sketch.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "trace/pattern.h"

namespace lsm::runtime {
class ThreadPool;
}

namespace lsm::obs {
class Counter;
class Gauge;
}

namespace lsm::net {

/// Deterministic synthetic picture feed: the size of picture `index`
/// (1-based) for a stream seeded with `seed`. Pure function of its
/// arguments — both the service and differential tests call it, so a
/// stream's statmux schedule can be replayed on a standalone
/// StreamingSmoother. Sizes follow the per-type default with a ±25%
/// hash-derived modulation, always >= 1 bit.
lsm::trace::Bits synthetic_picture_size(std::uint64_t seed, int index,
                                        lsm::trace::PictureType type,
                                        const core::DefaultSizes& defaults);

/// Everything the service needs to run one stream: identity, smoothing
/// parameters, and the deterministic feed that stands in for a live
/// encoder. Copied into the owning shard through the admission ring.
struct StreamSpec {
  /// Stream id; must be nonzero (0 is the service's own trace stream) and
  /// unique among resident streams of its shard.
  std::uint32_t id = 0;

  int gop_n = 9;  ///< GOP pattern N (pattern length)
  int gop_m = 3;  ///< GOP pattern M (reference distance)
  core::SmootherParams params;
  core::DefaultSizes defaults;

  std::uint64_t feed_seed = 1;  ///< seeds synthetic_picture_size
  int picture_count = 0;        ///< pictures until finish(); 0 = endless
  int period_ticks = 1;         ///< one picture arrives every this many epochs
  int phase_ticks = 0;          ///< tick of the first arrival

  /// Declared average rate (bps): mean default picture size over one
  /// pattern divided by tau. The admission rate check reserves this.
  double nominal_rate() const;
};

struct StatmuxConfig {
  int shards = 1;    ///< logical shards; FIXES the deterministic partition
  int threads = 0;   ///< pool workers; 0 = one per shard (capped at cores)
  std::size_t ring_capacity = 1024;  ///< per-shard admission ring slots
  int max_streams_per_shard = 1 << 20;
  double link_rate_bps = 10e9;   ///< shared link capacity
  double bucket_sigma_bits = 0;  ///< policer depth; 0 = one tick at link rate
  double tick_seconds = 1.0 / 30.0;  ///< epoch duration for the link model
  /// When true every shard keeps its decided sends (in decision order) for
  /// differential comparison; leave off at scale.
  bool collect_sends = false;
  /// Epochs of reserved-rate history to retain. 0 keeps the full series
  /// (one push per epoch, unbounded — fine for tests and short studies);
  /// a positive limit turns the series into a ring of the most recent
  /// `rate_history_limit` totals, so a long-running service allocates its
  /// history once and then runs epoch after epoch without touching the
  /// heap (BM_MuxSteadyAllocs gates this at zero).
  std::size_t rate_history_limit = 0;

  /// Health plane (DESIGN.md §3.10). Always on — the steady-state cost is
  /// a handful of integer bucket increments per picture/epoch, gated
  /// under 5% by the BM_MuxScale baseline — with the SLO spec and the
  /// time-series geometry as configuration. The default SLO is the
  /// paper's service guarantee: delay slack >= 0 (picture decided within
  /// its delay bound D) for 99.9% of pictures.
  obs::SloSpec slo{"statmux.delay_slack", 0.999, 32, 256, 1.0};
  std::size_t health_window_count = 32;      ///< series ring (windows)
  std::int64_t health_epochs_per_window = 8; ///< epochs per series window

  /// Throws std::invalid_argument on a non-positive shard count, ring
  /// capacity, capacity, link rate, or tick.
  void validate() const;
};

/// One decided picture, attributed to its stream: the schedule unit the
/// differential suite compares bitwise.
struct StreamSend {
  std::uint32_t stream = 0;
  core::PictureSend send;
};

/// Monotone service-wide totals (sums over shards; exact integers).
struct StatmuxStats {
  std::int64_t admitted = 0;
  std::int64_t rejected_duplicate = 0;
  std::int64_t rejected_capacity = 0;
  std::int64_t rejected_rate = 0;
  std::int64_t departed = 0;   ///< explicit departures applied
  std::int64_t finished = 0;   ///< streams that completed their sequence
  std::int64_t pictures = 0;   ///< pictures pushed into smoothers
  std::int64_t decisions = 0;  ///< schedule decisions released
  std::int64_t overshoot_epochs = 0;  ///< epochs the policer rejected
};

class StatmuxService {
 public:
  /// `pool` may be shared with other subsystems; when null the service
  /// owns a pool with config.threads workers. Throws on invalid config.
  explicit StatmuxService(StatmuxConfig config,
                          runtime::ThreadPool* pool = nullptr);
  ~StatmuxService();

  StatmuxService(const StatmuxService&) = delete;
  StatmuxService& operator=(const StatmuxService&) = delete;

  /// Enqueues an admission on the owning shard's ring. Returns false when
  /// the ring is full (retry after an epoch drains) or the spec is
  /// trivially invalid (id 0, non-positive cadence or pattern); admission
  /// checks proper (duplicate id, shard capacity, rate budget) happen on
  /// the shard at the next epoch and are reported through stats().
  /// Thread-safe: any thread, any time.
  bool admit(const StreamSpec& spec);

  /// Enqueues a departure for `id`. Returns false when the ring is full.
  /// Departing an unknown id is a no-op. Thread-safe.
  bool depart(std::uint32_t id);

  /// Runs one epoch: every shard drains its ring, applies admissions in
  /// canonical order, advances the streams due this tick, and the service
  /// reduces reserved rates into the link model. Call from one thread
  /// (the epoch driver); admit()/depart() may race freely against it.
  void run_epoch();

  /// Runs `count` epochs as one batch: each shard executes its whole
  /// batch in a single pool task, and the per-epoch link-model reduction
  /// happens afterwards from the shards' recorded totals (see the
  /// reservation-aggregation note above). Commands enqueued before the
  /// call apply at the batch's first epoch — exactly as they would under
  /// `count` separate run_epoch() calls — and all outputs (schedules,
  /// rate series, trace bytes, stats) are bitwise identical to the
  /// unbatched equivalent.
  void run_epochs(int count);

  int shard_count() const noexcept;
  std::int64_t tick() const noexcept { return tick_; }

  /// Resident streams after the last epoch.
  std::int64_t active_streams() const noexcept;

  /// Total reserved rate (bps) after the last epoch.
  double reserved_rate() const noexcept;

  /// Reserved-rate totals, one per epoch — the aggregate rate series the
  /// differential suite compares bitwise. With rate_history_limit == 0
  /// (the default) entries are in epoch order; with a limit the vector is
  /// the underlying ring (rotated, most recent `limit` epochs) — use
  /// rate_history() when order matters.
  const std::vector<double>& rate_series() const noexcept {
    return rate_series_;
  }

  /// Copies the retained reserved-rate history into `out` in chronological
  /// order (oldest first), regardless of rate_history_limit.
  void rate_history(std::vector<double>& out) const;

  /// Streams advanced in the last epoch (the dirty-set size).
  std::int64_t last_dirty_streams() const noexcept;

  /// Calendar entries resident across all shards' timing wheels (live and
  /// stale alike). Tracks the resident stream count plus not-yet-expired
  /// stale entries; exported as the gauge "statmux.wheel.entries" and
  /// gated in BENCH_BASELINE.json as a leak detector.
  std::int64_t wheel_entries() const noexcept;

  /// Resident streams of one shard — the per-shard occupancy axis
  /// bench/mux_scale reports imbalance over.
  std::int64_t shard_stream_count(int shard) const;

  /// Cumulative wall-clock seconds shard `shard`'s epoch tasks have run
  /// (measured around each batch, shard-locally). Skew across shards is
  /// the epoch-time imbalance bench/mux_scale reports.
  double shard_busy_seconds(int shard) const;

  StatmuxStats stats() const;

  /// Decided sends of `shard` in decision order; empty unless
  /// config.collect_sends. Valid between epochs.
  const std::vector<StreamSend>& collected_sends(int shard) const;

  // --- Health plane (DESIGN.md §3.10) ---------------------------------

  /// Canonical health snapshot as JSON: merged quantile sketches
  /// (per-picture delay and delay slack, per-epoch queue depth and dirty
  /// set), the epoch-aligned time series, and the SLO burn state. Every
  /// field is either an integer accumulation or a multiset-invariant
  /// extremum of the observation population, so the string is
  /// BYTE-IDENTICAL across shard counts, thread counts, batch sizes, and
  /// ExecutionPaths for the same admission/feed program (the
  /// StatmuxHealth determinism suite pins shards 1/4/8 x threads 1/8
  /// under TSan). `per_shard` appends a "shards" detail section — the
  /// lsm_top per-shard view — which fixes the shard count in the bytes
  /// and adds wall-clock epoch-latency quantiles, so it is deliberately
  /// NOT part of the canonical comparison form.
  std::string health_json(bool per_shard = false) const;

  /// Burn state of the configured SLO after the last epoch.
  const obs::SloState& slo_state() const noexcept {
    return slo_.state();
  }

  /// Merged per-picture sketches after the last batch (shard-index-order
  /// reduction of the per-shard sketches, like the rate series).
  const obs::QuantileSketch& delay_sketch() const noexcept {
    return merged_delay_;
  }
  const obs::QuantileSketch& delay_slack_sketch() const noexcept {
    return merged_slack_;
  }

 private:
  struct Shard;
  void run_shard_epoch(Shard& shard, std::int64_t now);

  StatmuxConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<runtime::ThreadPool> owned_pool_;
  runtime::ThreadPool* pool_;  ///< the pool epochs run on

  std::int64_t tick_ = 0;
  int batch_count_ = 0;  ///< epochs in the in-flight run_epochs batch
  std::vector<double> rate_series_;
  std::vector<double> totals_scratch_;  ///< batch totals (capacity reused)

  /// Metric handles resolved once at construction (registry handles have
  /// stable addresses): the epoch driver publishes telemetry with plain
  /// atomic stores — no name lookup, no string building, no allocation.
  obs::Counter* epochs_counter_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
  obs::Gauge* rate_gauge_ = nullptr;
  obs::Gauge* dirty_gauge_ = nullptr;
  obs::Gauge* wheel_gauge_ = nullptr;
  obs::Gauge* occupancy_max_gauge_ = nullptr;
  obs::Gauge* occupancy_imbalance_gauge_ = nullptr;
  double last_rate_ = 0.0;  ///< most recent epoch total (ring-independent)
  double bucket_tokens_ = 0.0;  ///< link policer fill (bits)
  std::int64_t overshoot_epochs_ = 0;

  // Health plane: driver-owned canonical state. The merged_* sketches are
  // rebuilt from the cumulative per-shard sketches at every batch end
  // (shard-index order); queue/dirty sketches and the series observe the
  // GLOBAL per-epoch totals — summed over shards as integers — because a
  // per-shard-per-epoch observation distribution would depend on the
  // shard count. merged_epoch_wall_ (wall-clock epoch latency) is kept
  // for operators but excluded from the canonical snapshot, the same way
  // deterministic_events() strips kShardStart/kShardEnd.
  obs::QuantileSketch merged_delay_;
  obs::QuantileSketch merged_slack_;
  obs::QuantileSketch merged_epoch_wall_;
  obs::QuantileSketch queue_sketch_;
  obs::QuantileSketch dirty_sketch_;
  obs::TimeSeries queue_series_;
  obs::TimeSeries dirty_series_;
  obs::TimeSeries decisions_series_;
  obs::TimeSeries active_series_;
  obs::SloTracker slo_;

  /// Registry mirrors (pre-resolved like the gauges above): the driver
  /// assign()s the freshly merged sketches every batch so scrapes and
  /// Prometheus expositions see the health plane without touching the
  /// service.
  obs::SketchMetric* delay_sketch_metric_ = nullptr;
  obs::SketchMetric* slack_sketch_metric_ = nullptr;
  obs::SketchMetric* queue_sketch_metric_ = nullptr;
  obs::SketchMetric* dirty_sketch_metric_ = nullptr;
  obs::SketchMetric* epoch_wall_metric_ = nullptr;
  obs::TimeSeriesMetric* queue_series_metric_ = nullptr;
  obs::TimeSeriesMetric* dirty_series_metric_ = nullptr;
  obs::TimeSeriesMetric* decisions_series_metric_ = nullptr;
  obs::TimeSeriesMetric* active_series_metric_ = nullptr;
};

}  // namespace lsm::net
