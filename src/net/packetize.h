// Cell packetization: turns a rate schedule (smoothed or raw) into the
// sequence of fixed-size cell arrivals an ATM-style multiplexer sees. The
// paper's motivation (Sections 1 and 3, refs [10, 11]) is that reducing the
// rate variance of such cell streams improves the statistical-multiplexing
// gain of finite-buffer packet switches.
#pragma once

#include <vector>

#include "core/smoother.h"
#include "trace/trace.h"

namespace lsm::net {

/// ATM payload: 48 bytes.
inline constexpr int kCellPayloadBits = 48 * 8;

/// One cell arrival at the multiplexer.
struct Cell {
  double time = 0.0;  ///< arrival instant (transmission completion), seconds
  int source = 0;     ///< which stream produced it
  int picture = 0;    ///< 1-based picture index within the stream
};

/// Packetizes a smoothing result: picture i occupies [t_i, d_i) at rate r_i;
/// each cell's arrival is the instant its last bit leaves the sender.
std::vector<Cell> packetize(const core::SmoothingResult& result,
                            int source = 0);

/// Packetizes an UNSMOOTHED trace: picture i is transmitted evenly within
/// its own picture period ((i-1) tau, i tau] — the per-picture peak-rate
/// behaviour smoothing exists to remove.
std::vector<Cell> packetize_unsmoothed(const lsm::trace::Trace& trace,
                                       int source = 0);

/// Shifts every cell time by `offset` (e.g. to desynchronize sources).
void shift_cells(std::vector<Cell>& cells, double offset);

}  // namespace lsm::net
