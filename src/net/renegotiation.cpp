#include "net/renegotiation.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace lsm::net {

namespace {

/// Maximum of r over [a, b] (0 where the schedule is undefined).
core::Rate max_rate_over(const core::RateSchedule& schedule, double a,
                         double b) {
  core::Rate peak = 0.0;
  for (const core::RateSegment& segment : schedule.segments()) {
    if (segment.end <= a) continue;
    if (segment.begin >= b) break;
    peak = std::max(peak, segment.rate);
  }
  return peak;
}

}  // namespace

ReservationResult plan_reservation(const core::RateSchedule& schedule,
                                   const RenegotiationPolicy& policy) {
  if (schedule.empty()) {
    throw std::invalid_argument("plan_reservation: empty schedule");
  }
  if (!(policy.min_hold > 0.0) || policy.headroom < 1.0 ||
      policy.release_threshold < 0.0 || policy.release_threshold > 1.0) {
    throw std::invalid_argument("plan_reservation: bad policy");
  }

  const std::vector<double> breakpoints = schedule.breakpoints();
  const double start = schedule.start_time();
  const double end = schedule.end_time();

  std::vector<core::RateSegment> reserved;
  double t = start;
  while (t < end) {
    const double window_end = std::min(t + policy.min_hold, end);
    core::Rate level =
        policy.headroom * max_rate_over(schedule, t, window_end);
    // Degenerate all-idle window: hold a zero reservation.
    double segment_end = window_end;
    // Extend past the hold window while the demand stays under the level
    // and releasing is not yet worthwhile.
    auto next_breakpoint = std::upper_bound(breakpoints.begin(),
                                            breakpoints.end(), segment_end);
    while (segment_end < end) {
      const double probe_end =
          next_breakpoint == breakpoints.end() ? end : *next_breakpoint;
      // Demand within (segment_end, probe_end) is constant; sample it.
      const core::Rate demand =
          max_rate_over(schedule, segment_end, probe_end);
      if (demand * policy.headroom > level) break;  // renegotiate up
      if (policy.release_threshold > 0.0 &&
          policy.headroom *
                  max_rate_over(schedule, segment_end,
                                segment_end + policy.min_hold) <
              policy.release_threshold * level) {
        break;  // renegotiate down
      }
      segment_end = probe_end;
      if (next_breakpoint != breakpoints.end()) ++next_breakpoint;
    }
    reserved.push_back(core::RateSegment{t, segment_end, level});
    t = segment_end;
  }

  // Merge adjacent equal-level segments (a release followed by an identical
  // re-reservation is not a real renegotiation).
  std::vector<core::RateSegment> merged;
  for (const core::RateSegment& segment : reserved) {
    if (!merged.empty() && merged.back().rate == segment.rate &&
        merged.back().end == segment.begin) {
      merged.back().end = segment.end;
    } else {
      merged.push_back(segment);
    }
  }

  ReservationResult result;
  result.renegotiations = static_cast<int>(merged.size()) - 1;
  for (const core::RateSegment& segment : merged) {
    result.peak_reserved = std::max(result.peak_reserved, segment.rate);
  }
  result.reservation = core::RateSchedule(std::move(merged));
  const double used = schedule.integral(start, end);
  const double booked = result.reservation.integral(start, end);
  if (used > 0.0) result.over_reservation = booked / used - 1.0;
  return result;
}

}  // namespace lsm::net
