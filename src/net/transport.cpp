#include "net/transport.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "obs/flight_recorder.h"
#include "obs/tracer.h"
#include "sim/rng.h"

namespace lsm::net {

namespace {

/// The delay bound holds only up to floating-point reassociation noise (the
/// same tolerance the lateness check uses); excess below this is not a
/// degradation signal.
constexpr double kDelayTolerance = 1e-9;

double delay_excess(double delay, double bound) {
  return delay > bound + kDelayTolerance ? delay - bound : 0.0;
}

/// Slack fed to the health sketches: D - delay, with within-tolerance
/// negatives snapped to 0.0 so the sketch's `clamped` tally counts only
/// true delay-bound violations (the SLO's definition of bad), not
/// reassociation noise.
double slack_value(double delay, double bound) {
  const double slack = bound - delay;
  return slack < 0.0 && delay <= bound + kDelayTolerance ? 0.0 : slack;
}

/// Validates the shared config fields and returns the effective playout
/// offset (auto-selection uses the jitter *bound*, never a sampled value:
/// Theorem 1's offset is D + latency + jitter).
double validate_and_select_offset(const PipelineConfig& config) {
  if (config.network_latency < 0.0 || config.jitter < 0.0) {
    throw std::invalid_argument("run_live_pipeline: negative latency/jitter");
  }
  if (!std::isfinite(config.playout_offset) || config.playout_offset < 0.0) {
    throw std::invalid_argument(
        "run_live_pipeline: playout_offset must be finite and >= 0");
  }
  config.params.validate();
  return config.playout_offset > 0.0
             ? config.playout_offset
             : config.params.D + config.network_latency + config.jitter;
}

/// Drains `bits` through the degraded channel starting at `start`: the
/// granted rate is `rate_before` until `switch_time` (a pending
/// renegotiation) and `rate_after` from then on, both scaled by the
/// effective throughput factor min(fade, channel state factor), which is
/// piecewise constant between the fade and channel breakpoints.
struct DrainResult {
  double depart = 0.0;
  bool faded = false;          ///< some bits flowed under a fade window
  bool channel_faded = false;  ///< some bits flowed in a degraded state
};
DrainResult drain_through_faults(double start, double bits,
                                 double rate_before, double switch_time,
                                 double rate_after,
                                 const sim::FaultPlan& plan,
                                 const sim::ChannelPlan& channel) {
  // All boundaries where the effective rate can change. Fades end after
  // the last event and the chain is ideal beyond its horizon, so a
  // generous right edge covers every breakpoint.
  double far_edge = std::max(start, channel.horizon());
  for (const sim::FaultEvent& event : plan.events()) {
    far_edge = std::max(far_edge, event.end());
  }
  far_edge += 1.0;
  std::vector<double> edges = plan.fade_breakpoints(start, far_edge);
  const std::vector<double> channel_edges =
      channel.factor_breakpoints(start, far_edge);
  const bool had_extra = !channel_edges.empty() || switch_time > start;
  edges.insert(edges.end(), channel_edges.begin(), channel_edges.end());
  if (switch_time > start) edges.push_back(switch_time);
  if (had_extra) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  DrainResult result;
  double t = start;
  double remaining = bits;
  std::size_t next_edge = 0;
  for (;;) {
    const double fade_factor = plan.fade_factor_at(t);
    const double channel_factor = channel.factor_at(t);
    const double factor = std::min(fade_factor, channel_factor);
    const double granted = t < switch_time ? rate_before : rate_after;
    const double effective = granted * factor;
    const double boundary =
        next_edge < edges.size() ? edges[next_edge] : -1.0;
    if (effective > 0.0) {
      if (fade_factor < 1.0) result.faded = true;
      if (channel_factor < 1.0) result.channel_faded = true;
      const double finish = t + remaining / effective;
      if (boundary < 0.0 || finish <= boundary) {
        result.depart = finish;
        return result;
      }
      remaining -= effective * (boundary - t);
    } else if (boundary < 0.0) {
      // Cannot happen for a valid plan: fades end and rate_after > 0.
      throw std::logic_error("drain_through_faults: channel never drains");
    }
    t = boundary;
    ++next_edge;
  }
}

}  // namespace

PipelineReport run_live_pipeline(const lsm::trace::Trace& trace,
                                 const PipelineConfig& config) {
  PipelineReport report;
  report.playout_offset = validate_and_select_offset(config);

  sim::EventQueue queue;
  sim::Rng jitter_rng(config.jitter_seed);
  core::PatternEstimator estimator(trace);
  core::SmootherEngine engine(trace, config.params, estimator,
                              core::Variant::kBasic, config.execution_path);

  // Self-scheduling sender: each step computes the next picture's rate at
  // its decision instant t_i and schedules the following decision at d_i
  // (or at the arrival instant the engine will wait for, whichever is
  // later — the engine computes t_i itself; we only need to wake it then).
  auto send_next = std::make_shared<std::function<void()>>();
  *send_next = [&, send_next]() {
    if (engine.done()) return;
    const core::PictureSend send = engine.step();
    if (send.start + 1e-9 < queue.now()) {
      throw std::logic_error("run_live_pipeline: engine decided in the past");
    }
    PictureDelivery delivery;
    delivery.index = send.index;
    delivery.sender_start = send.start;
    delivery.sender_done = send.depart;
    delivery.received = send.depart + config.network_latency +
                        (config.jitter > 0.0
                             ? jitter_rng.uniform(0.0, config.jitter)
                             : 0.0);
    delivery.deadline = report.playout_offset +
                        (send.index - 1) * config.params.tau;
    delivery.late = delivery.received > delivery.deadline + 1e-9;
    report.deliveries.push_back(delivery);
    report.underflows += delivery.late ? 1 : 0;
    report.max_sender_delay = std::max(report.max_sender_delay, send.delay);
    report.worst_delay_excess =
        std::max(report.worst_delay_excess,
                 delay_excess(send.delay, config.params.D));
    report.delay_sketch.observe(send.delay);
    report.slack_sketch.observe(slack_value(send.delay, config.params.D));
    // Wake up at the departure instant to decide the next picture's rate.
    queue.schedule_at(send.depart, [send_next] { (*send_next)(); });
  };

  // First decision cannot happen before K pictures have arrived.
  const double first_decision =
      std::min(config.params.K, trace.picture_count()) * config.params.tau;
  queue.schedule_at(first_decision, [send_next] { (*send_next)(); });
  queue.run();
  // The self-scheduling closure captures its own shared_ptr; break the
  // reference cycle explicitly once the simulation has drained.
  *send_next = nullptr;
  if (report.worst_delay_excess > 0.0) {
    obs::FlightRecorder::global().trigger("worst_delay_excess");
  }
  return report;
}

FaultedPipelineReport run_faulted_pipeline(const lsm::trace::Trace& trace,
                                           const FaultedPipelineConfig& config,
                                           const sim::FaultPlan& plan) {
  config.recovery.validate();
  FaultedPipelineReport out;
  PipelineReport& report = out.report;
  runtime::DegradationCounters& deg = out.degradation;
  report.playout_offset = validate_and_select_offset(config.base);

  sim::EventQueue queue;
  sim::Rng jitter_rng(config.base.jitter_seed);
  core::PatternEstimator estimator(trace);
  core::SmootherEngine engine(trace, config.base.params, estimator,
                              core::Variant::kBasic,
                              config.base.execution_path);

  // The pipeline's observability handle: bound to the ambient stream id so
  // batch drivers can attribute events per job. The engine shares the same
  // binding (constructed above, same thread, same scope).
  auto tracer = std::make_shared<obs::StreamTracer>();

  // Every fault window opens as an event on the simulation queue; the
  // injected tallies are therefore consistent with the plan by
  // construction (the property suite pins this).
  for (const sim::FaultEvent& event : plan.events()) {
    queue.schedule_at(event.start, [&deg, tracer, event] {
      switch (event.cls) {
        case sim::FaultClass::kChannelFade: ++deg.fades_injected; break;
        case sim::FaultClass::kBurstLoss: ++deg.losses_injected; break;
        case sim::FaultClass::kEncoderStall: ++deg.stalls_injected; break;
        case sim::FaultClass::kRenegotiationDenial:
          ++deg.denial_windows_injected;
          break;
      }
      tracer->emit(obs::EventKind::kFaultWindowOpen, 0, event.start,
                   static_cast<double>(event.cls), event.end(),
                   event.magnitude);
    });
    queue.schedule_at(event.end(), [tracer, event] {
      tracer->emit(obs::EventKind::kFaultWindowClose, 0, event.end(),
                   static_cast<double>(event.cls));
    });
  }

  // Channel state entries ride the queue the same way: one event per
  // sojourn, counting actual transitions (every segment after the first)
  // so the injected tally matches ChannelPlan::transition_count(). An
  // empty plan schedules nothing — the differential identity case.
  const double outage_threshold = config.channel_outage_threshold;
  for (std::size_t k = 0; k < config.channel.segments().size(); ++k) {
    const sim::ChannelSegment segment = config.channel.segments()[k];
    const bool is_transition = k > 0;
    const bool outage =
        outage_threshold > 0.0 && segment.factor <= outage_threshold;
    queue.schedule_at(segment.start,
                      [&deg, tracer, segment, is_transition, outage] {
                        deg.channel_transitions +=
                            is_transition ? 1u : 0u;
                        tracer->emit(obs::EventKind::kChannelState, 0,
                                     segment.start,
                                     static_cast<double>(segment.state),
                                     segment.factor, segment.end());
                        if (outage) {
                          obs::FlightRecorder::global().trigger(
                              "channel_outage");
                        }
                      });
  }

  const core::SmootherParams& params = config.base.params;
  const int n = trace.picture_count();
  double channel_free = 0.0;   // real instant the channel finishes a send
  double granted_rate = -1.0;  // network-granted reservation; < 0 = none yet

  auto send_next = std::make_shared<std::function<void()>>();
  *send_next = [&, send_next]() {
    if (engine.done()) return;
    // The engine plans in ideal time — its decisions are the contract the
    // sender negotiated. The real channel below may lag behind the plan,
    // so (unlike the un-faulted loop) queue.now() can legitimately pass
    // send.start.
    const core::PictureSend send = engine.step();

    // Encoder stall: sending picture i needs pictures i..i+K-1 on hand;
    // the last gate picture nominally arrives at min(i-1+K, n) tau, and an
    // active stall window delays it.
    const double gate_nominal =
        static_cast<double>(std::min(send.index - 1 + params.K, n)) *
        params.tau;
    const double stall = plan.stall_delay_at(gate_nominal);
    double actual_start =
        std::max(send.start, std::max(channel_free, gate_nominal + stall));

    // Rate request: the planned r_i, optionally relaxed upward to catch up
    // when the channel has fallen behind the plan (Section 4.4's
    // controlled r_i^U crossing, here bounded by relax_factor).
    double requested = send.rate;
    bool relaxed = false;
    if (config.recovery.mode == DegradationMode::kRateRelaxation &&
        config.recovery.relax_factor > 1.0 &&
        actual_start > send.start + 1e-12) {
      requested = send.rate * config.recovery.relax_factor;
      relaxed = true;
    }

    // Renegotiation: a rate increase (or initial setup) is a signalling
    // event the network may deny; retry with bounded exponential backoff,
    // drawing down the previous grant while waiting.
    const double rate_before = granted_rate > 0.0 ? granted_rate : 0.0;
    double switch_time = actual_start;
    if (granted_rate < 0.0 || requested > granted_rate) {
      const std::uint32_t picture =
          static_cast<std::uint32_t>(send.index);
      int outage_denials = 0;
      const RetryOutcome outcome = resolve_with_backoff(
          actual_start, config.recovery.retry, plan, config.channel,
          outage_threshold, &outage_denials);
      // A clean instant grant is the ideal-world no-op the live pipeline
      // models implicitly; tracing it would break the zero-intensity
      // canonical-byte identity. Only eventful exchanges (denial, grant
      // latency, give-up) reach the trace.
      const bool eventful = outcome.denied > 0 ||
                            (outcome.granted &&
                             outcome.grant_time > actual_start);
      if (eventful) {
        tracer->emit(obs::EventKind::kRenegRequest, picture, actual_start,
                     requested);
      }
      deg.outage_denials += static_cast<std::uint64_t>(outage_denials);
      deg.denials += static_cast<std::uint64_t>(outcome.denied);
      deg.retries += static_cast<std::uint64_t>(
          outcome.granted ? outcome.denied
                          : std::max(0, outcome.denied - 1));
      if (outcome.denied > 0) {
        tracer->emit(obs::EventKind::kRenegDenial, picture, actual_start,
                     requested, static_cast<double>(outcome.denied));
      }
      if (outcome.granted) {
        if (eventful) {
          tracer->emit(obs::EventKind::kRenegGrant, picture,
                       outcome.grant_time, requested,
                       static_cast<double>(outcome.denied));
        }
        if (outcome.grant_time > actual_start) {
          deg.recovery_latency.add(outcome.grant_time - actual_start);
          switch_time = outcome.grant_time;
        }
        granted_rate = requested;
      } else {
        ++deg.giveups;
        tracer->emit(obs::EventKind::kRenegGiveUp, picture, actual_start,
                     requested, static_cast<double>(outcome.denied));
        obs::FlightRecorder::global().trigger("renegotiation_giveup");
        if (granted_rate <= 0.0) {
          // A stream with no reservation at all cannot degrade gracefully;
          // force the setup grant and account the failure.
          granted_rate = requested;
        } else {
          // Keep drawing down the old grant; the request is abandoned.
          requested = granted_rate;
          relaxed = false;
        }
      }
    } else {
      // Decreases (and re-requests of the current level) are releases: the
      // network always accepts capacity back, no signalling round-trip.
      granted_rate = requested;
    }

    // Burst loss: the fraction lost per attempt is retransmitted until it
    // lands, inflating the bits on the wire geometrically.
    const double loss = plan.loss_fraction_at(actual_start);
    const double nominal_bits = static_cast<double>(send.bits);
    const double wire_bits = nominal_bits / (1.0 - loss);

    // Untouched pictures reuse the engine's exact departure so a no-fault
    // run is bitwise identical to run_live_pipeline().
    double actual_depart;
    double actual_delay;
    bool faded = false;
    bool channel_faded = false;
    const bool touched =
        stall > 0.0 || loss > 0.0 || actual_start != send.start ||
        switch_time != actual_start || requested != send.rate ||
        plan.fade_factor_at(actual_start) < 1.0 ||
        config.channel.factor_at(actual_start) < 1.0 ||
        !plan.fade_breakpoints(actual_start, send.depart).empty() ||
        !config.channel.factor_breakpoints(actual_start, send.depart)
             .empty();
    if (!touched) {
      actual_depart = send.depart;
      actual_delay = send.delay;
    } else {
      const DrainResult drained =
          drain_through_faults(actual_start, wire_bits, rate_before,
                               switch_time, requested, plan, config.channel);
      actual_depart = drained.depart;
      actual_delay =
          actual_depart - static_cast<double>(send.index - 1) * params.tau;
      faded = drained.faded;
      channel_faded = drained.channel_faded;
      deg.pictures_stalled += stall > 0.0 ? 1 : 0;
      deg.pictures_retransmitted += loss > 0.0 ? 1 : 0;
      deg.retransmitted_bits += wire_bits - nominal_bits;
      deg.rate_relaxations += relaxed ? 1 : 0;
    }
    deg.pictures_faded += faded ? 1 : 0;
    deg.pictures_channel_faded += channel_faded ? 1 : 0;

    PictureDelivery delivery;
    delivery.index = send.index;
    delivery.sender_start = actual_start;
    delivery.sender_done = actual_depart;
    delivery.received = actual_depart + config.base.network_latency +
                        (config.base.jitter > 0.0
                             ? jitter_rng.uniform(0.0, config.base.jitter)
                             : 0.0);
    delivery.deadline =
        report.playout_offset + (send.index - 1) * params.tau;
    delivery.late = delivery.received > delivery.deadline + 1e-9;
    report.deliveries.push_back(delivery);
    report.underflows += delivery.late ? 1 : 0;
    deg.late_pictures += delivery.late ? 1 : 0;
    report.max_sender_delay =
        std::max(report.max_sender_delay, actual_delay);
    const double excess = delay_excess(actual_delay, params.D);
    report.worst_delay_excess = std::max(report.worst_delay_excess, excess);
    deg.worst_delay_excess = report.worst_delay_excess;
    report.delay_sketch.observe(actual_delay);
    report.slack_sketch.observe(slack_value(actual_delay, params.D));

    channel_free = actual_depart;
    // Next decision when both the plan and the real channel allow it.
    queue.schedule_at(std::max(send.depart, actual_depart),
                      [send_next] { (*send_next)(); });
  };

  const double first_decision =
      std::min(params.K, trace.picture_count()) * params.tau;
  queue.schedule_at(first_decision, [send_next] { (*send_next)(); });
  queue.run();
  *send_next = nullptr;
  if (report.worst_delay_excess > 0.0) {
    obs::FlightRecorder::global().trigger("worst_delay_excess");
  }
  return out;
}

}  // namespace lsm::net
