#include "net/transport.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "sim/rng.h"

namespace lsm::net {

PipelineReport run_live_pipeline(const lsm::trace::Trace& trace,
                                 const PipelineConfig& config) {
  if (config.network_latency < 0.0 || config.jitter < 0.0) {
    throw std::invalid_argument("run_live_pipeline: negative latency/jitter");
  }
  config.params.validate();

  PipelineReport report;
  report.playout_offset =
      config.playout_offset > 0.0
          ? config.playout_offset
          : config.params.D + config.network_latency + config.jitter;

  sim::EventQueue queue;
  sim::Rng jitter_rng(config.jitter_seed);
  core::PatternEstimator estimator(trace);
  core::SmootherEngine engine(trace, config.params, estimator);

  // Self-scheduling sender: each step computes the next picture's rate at
  // its decision instant t_i and schedules the following decision at d_i
  // (or at the arrival instant the engine will wait for, whichever is
  // later — the engine computes t_i itself; we only need to wake it then).
  auto send_next = std::make_shared<std::function<void()>>();
  *send_next = [&, send_next]() {
    if (engine.done()) return;
    const core::PictureSend send = engine.step();
    if (send.start + 1e-9 < queue.now()) {
      throw std::logic_error("run_live_pipeline: engine decided in the past");
    }
    PictureDelivery delivery;
    delivery.index = send.index;
    delivery.sender_start = send.start;
    delivery.sender_done = send.depart;
    delivery.received = send.depart + config.network_latency +
                        (config.jitter > 0.0
                             ? jitter_rng.uniform(0.0, config.jitter)
                             : 0.0);
    delivery.deadline = report.playout_offset +
                        (send.index - 1) * config.params.tau;
    delivery.late = delivery.received > delivery.deadline + 1e-9;
    report.deliveries.push_back(delivery);
    report.underflows += delivery.late ? 1 : 0;
    report.max_sender_delay = std::max(report.max_sender_delay, send.delay);
    // Wake up at the departure instant to decide the next picture's rate.
    queue.schedule_at(send.depart, [send_next] { (*send_next)(); });
  };

  // First decision cannot happen before K pictures have arrived.
  const double first_decision =
      std::min(config.params.K, trace.picture_count()) * config.params.tau;
  queue.schedule_at(first_decision, [send_next] { (*send_next)(); });
  queue.run();
  // The self-scheduling closure captures its own shared_ptr; break the
  // reference cycle explicitly once the simulation has drained.
  *send_next = nullptr;
  return report;
}

}  // namespace lsm::net
