// Weighted fair queueing (packetized, round-robin form) with per-source
// buffers — the scheduling discipline that turns smoothing into a
// guarantee for EACH stream rather than for the aggregate.
//
// The FIFO multiplexer of mux.h shares one buffer: a single misbehaving
// (unsmoothed) source inflates everyone's loss. Here each source owns a
// bounded queue and the server visits queues in weighted round-robin order
// (with fixed-size cells, weighted rounds give exact long-run weighted
// fairness, the classic WRR special case of fair queueing). A conforming
// smoothed stream whose share covers its rate loses nothing, no matter what
// the other queues do.
#pragma once

#include <vector>

#include "net/packetize.h"

namespace lsm::net {

struct WfqConfig {
  double service_rate_bps = 10e6;
  /// One positive integer weight per source (cells served per round while
  /// backlogged).
  std::vector<int> weights;
  /// Per-source queue capacity in cells (>= 1); arrivals to a full queue
  /// are dropped — and charged to that source alone.
  int buffer_cells_per_queue = 100;
};

struct WfqResult {
  std::vector<std::int64_t> arrived_by_source;
  std::vector<std::int64_t> served_by_source;
  std::vector<std::int64_t> dropped_by_source;
  std::vector<double> mean_delay_by_source;  ///< queueing delay of served cells
  std::vector<double> max_delay_by_source;
  double loss_ratio = 0.0;  ///< total dropped / total arrived
};

/// Simulates the scheduler over the given per-source cell streams (each
/// sorted by time). Throws std::invalid_argument on a bad config or a
/// weights/sources count mismatch.
WfqResult simulate_wfq(const std::vector<std::vector<Cell>>& sources,
                       const WfqConfig& config);

}  // namespace lsm::net
