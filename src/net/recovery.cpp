#include "net/recovery.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/flight_recorder.h"
#include "obs/tracer.h"

namespace lsm::net {

void RetryPolicy::validate() const {
  if (max_retries < 0 || !(base_backoff > 0.0) ||
      !std::isfinite(base_backoff) || !(backoff_multiplier >= 1.0) ||
      !std::isfinite(backoff_multiplier) || !(max_backoff >= base_backoff) ||
      !std::isfinite(max_backoff)) {
    throw std::invalid_argument("RetryPolicy: bad field");
  }
}

void RecoveryPolicy::validate() const {
  retry.validate();
  if (!(relax_factor >= 1.0) || !std::isfinite(relax_factor)) {
    throw std::invalid_argument("RecoveryPolicy: relax_factor must be >= 1");
  }
}

RetryOutcome resolve_with_backoff(double request_time,
                                  const RetryPolicy& retry,
                                  const sim::FaultPlan& plan) {
  return resolve_with_backoff(request_time, retry, plan, sim::ChannelPlan(),
                              0.0);
}

RetryOutcome resolve_with_backoff(double request_time,
                                  const RetryPolicy& retry,
                                  const sim::FaultPlan& plan,
                                  const sim::ChannelPlan& channel,
                                  double outage_threshold,
                                  int* outage_denials) {
  const auto refused = [&](double t) {
    if (plan.denial_active(t)) return true;
    if (outage_threshold > 0.0 &&
        channel.factor_at(t) <= outage_threshold) {
      if (outage_denials != nullptr) ++*outage_denials;
      return true;
    }
    return false;
  };
  RetryOutcome outcome;
  outcome.grant_time = request_time;
  double backoff = retry.base_backoff;
  while (refused(outcome.grant_time)) {
    if (outcome.denied >= retry.max_retries) {
      // This refusal exhausts the budget: no further retry is issued.
      ++outcome.denied;
      outcome.granted = false;
      return outcome;
    }
    ++outcome.denied;
    outcome.grant_time += backoff;
    backoff = std::min(backoff * retry.backoff_multiplier,
                       retry.max_backoff);
  }
  return outcome;
}

FaultedReservationResult plan_reservation_faulted(
    const core::RateSchedule& schedule, const RenegotiationPolicy& policy,
    const RetryPolicy& retry, const sim::FaultPlan& plan) {
  retry.validate();
  const ReservationResult ideal = plan_reservation(schedule, policy);

  FaultedReservationResult result;
  result.renegotiations = ideal.renegotiations;

  std::vector<core::RateSegment> honored;
  core::Rate current_level = 0.0;
  bool have_level = false;
  obs::StreamTracer tracer;
  for (const core::RateSegment& segment : ideal.reservation.segments()) {
    tracer.emit(obs::EventKind::kRenegRequest, 0, segment.begin,
                segment.rate);
    const RetryOutcome outcome =
        resolve_with_backoff(segment.begin, retry, plan);
    // A grant that lands after the segment's span ended is moot: the level
    // was never held while it mattered.
    const bool gave_up =
        !outcome.granted || outcome.grant_time >= segment.end;
    if (outcome.denied > 0) {
      tracer.emit(obs::EventKind::kRenegDenial, 0, segment.begin,
                  segment.rate, static_cast<double>(outcome.denied));
    }
    if (gave_up) {
      tracer.emit(obs::EventKind::kRenegGiveUp, 0, segment.begin,
                  segment.rate, static_cast<double>(outcome.denied));
      obs::FlightRecorder::global().trigger("reservation_giveup");
    } else {
      tracer.emit(obs::EventKind::kRenegGrant, 0, outcome.grant_time,
                  segment.rate, static_cast<double>(outcome.denied));
    }

    GrantRecord record;
    record.request_time = segment.begin;
    record.grant_time = gave_up ? segment.begin : outcome.grant_time;
    record.level = segment.rate;
    record.denied_attempts = outcome.denied;
    record.gave_up = gave_up;
    result.grants.push_back(record);

    result.denials += outcome.denied;
    // Every refusal except a budget-exhausting final one triggered a retry.
    result.retries += outcome.granted ? outcome.denied
                                      : outcome.denied - 1;
    result.giveups += gave_up ? 1 : 0;

    if (gave_up) {
      // Draw down the previous grant for the whole span (nothing reserved
      // at all when setup itself was denied).
      if (have_level) {
        honored.push_back(
            core::RateSegment{segment.begin, segment.end, current_level});
      }
      continue;
    }
    if (outcome.grant_time > segment.begin && have_level) {
      honored.push_back(core::RateSegment{segment.begin, outcome.grant_time,
                                          current_level});
    }
    honored.push_back(core::RateSegment{
        std::max(segment.begin, outcome.grant_time), segment.end,
        segment.rate});
    current_level = segment.rate;
    have_level = true;
  }

  // Merge adjacent equal-level spans (a grant that restores the previous
  // level is not a distinct reservation interval).
  std::vector<core::RateSegment> merged;
  for (const core::RateSegment& segment : honored) {
    if (!merged.empty() && merged.back().rate == segment.rate &&
        merged.back().end == segment.begin) {
      merged.back().end = segment.end;
    } else {
      merged.push_back(segment);
    }
  }
  result.reservation = core::RateSchedule(std::move(merged));

  const double start = schedule.start_time();
  const double end = schedule.end_time();
  const double used = schedule.integral(start, end);
  const double booked = result.reservation.integral(start, end);
  if (used > 0.0) result.over_reservation = booked / used - 1.0;

  // Max shortfall r(t) - R(t): both functions are piecewise constant, so
  // sampling each combined-breakpoint interval at its midpoint is exact.
  std::vector<double> edges = schedule.breakpoints();
  for (const double edge : result.reservation.breakpoints()) {
    edges.push_back(edge);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  for (std::size_t k = 0; k + 1 < edges.size(); ++k) {
    const double mid = 0.5 * (edges[k] + edges[k + 1]);
    const double gap =
        schedule.rate_at(mid) - result.reservation.rate_at(mid);
    if (gap > result.max_shortfall) result.max_shortfall = gap;
  }
  return result;
}

}  // namespace lsm::net
