#include "net/layered.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/estimator.h"
#include "obs/flight_recorder.h"
#include "obs/tracer.h"

namespace lsm::net {

namespace {

/// Cap comparisons tolerate summation noise: a prefix that fits the cap
/// up to this slack is admitted rather than shed on a rounding artifact.
constexpr double kCapSlack = 1e-9;

bool fits(double demand, double cap) {
  return demand <= cap * (1.0 + 1e-12) + kCapSlack;
}

/// Normalized layer weights into a fixed-size array (layer count is capped
/// at kMaxLayers): no heap traffic, the values land in the caller's frame.
std::array<double, kMaxLayers> layer_weights(const LayeredConfig& config) {
  const std::size_t n = config.layers.size();
  std::array<double, kMaxLayers> weights{};
  const bool explicit_weights = config.layers.front().weight > 0.0;
  double sum = 0.0;
  for (std::size_t l = 0; l < n; ++l) {
    weights[l] = explicit_weights ? config.layers[l].weight
                                  : std::ldexp(1.0, -static_cast<int>(l));
    sum += weights[l];
  }
  for (std::size_t l = 0; l < n; ++l) weights[l] /= sum;
  return weights;
}

}  // namespace

void LayeredConfig::validate() const {
  if (layers.empty() || static_cast<int>(layers.size()) > kMaxLayers) {
    throw std::invalid_argument(
        "LayeredConfig: layer count outside [1, kMaxLayers]");
  }
  const bool explicit_weights = layers.front().weight > 0.0;
  int previous_priority = -1;
  for (const LayerSpec& layer : layers) {
    // SmootherParams::validate rejects non-positive D/tau, negative K,
    // H < 1, and (via the > comparisons) NaN fields; the explicit finite
    // checks make the NaN contract independent of that phrasing.
    if (!std::isfinite(layer.params.D) || !std::isfinite(layer.params.tau)) {
      throw std::invalid_argument("LayeredConfig: non-finite layer D/tau");
    }
    layer.params.validate();
    if (layer.priority <= previous_priority) {
      throw std::invalid_argument(
          "LayeredConfig: layer priorities must be strictly increasing");
    }
    if (layer.priority < 0) {
      throw std::invalid_argument("LayeredConfig: negative layer priority");
    }
    previous_priority = layer.priority;
    if (!std::isfinite(layer.relax_factor) || layer.relax_factor < 1.0) {
      throw std::invalid_argument("LayeredConfig: relax_factor < 1");
    }
    if (std::isnan(layer.weight) || layer.weight < 0.0 ||
        !std::isfinite(std::max(layer.weight, 0.0))) {
      throw std::invalid_argument("LayeredConfig: malformed layer weight");
    }
    if ((layer.weight > 0.0) != explicit_weights) {
      throw std::invalid_argument(
          "LayeredConfig: either every layer sets a weight or none does");
    }
    if (layer.params.tau != layers.front().params.tau) {
      throw std::invalid_argument(
          "LayeredConfig: layers must share one picture period");
    }
  }
  if (!std::isfinite(channel_cap) || channel_cap < 0.0) {
    throw std::invalid_argument("LayeredConfig: bad channel_cap");
  }
  if (!std::isfinite(network_latency) || network_latency < 0.0 ||
      !std::isfinite(jitter) || jitter < 0.0) {
    throw std::invalid_argument("LayeredConfig: bad latency/jitter");
  }
  if (!std::isfinite(playout_offset) || playout_offset < 0.0) {
    throw std::invalid_argument("LayeredConfig: bad playout_offset");
  }
  if (!std::isfinite(channel_outage_threshold)) {
    throw std::invalid_argument("LayeredConfig: bad outage threshold");
  }
  retry.validate();
}

std::vector<lsm::trace::Trace> split_layers(const lsm::trace::Trace& trace,
                                            const LayeredConfig& config) {
  config.validate();
  const int n = static_cast<int>(config.layers.size());
  if (n == 1) return {trace};  // verbatim: the identity case

  const std::array<double, kMaxLayers> weights = layer_weights(config);
  const int pictures = trace.picture_count();
  std::vector<std::vector<lsm::trace::Bits>> sizes(
      static_cast<std::size_t>(n));
  for (auto& layer_sizes : sizes) {
    layer_sizes.reserve(static_cast<std::size_t>(pictures));
  }
  for (int i = 1; i <= pictures; ++i) {
    const lsm::trace::Bits total = trace.size_of(i);
    lsm::trace::Bits assigned = 0;
    // Enhancement layers take their weighted floor (at least one bit);
    // the base absorbs the rounding so the partition is exact.
    for (int l = n - 1; l >= 1; --l) {
      const lsm::trace::Bits share = std::max<lsm::trace::Bits>(
          1, static_cast<lsm::trace::Bits>(
                 std::floor(static_cast<double>(total) *
                            weights[static_cast<std::size_t>(l)])));
      sizes[static_cast<std::size_t>(l)].push_back(share);
      assigned += share;
    }
    const lsm::trace::Bits base = total - assigned;
    if (base < 1) {
      throw std::invalid_argument(
          "split_layers: picture too small for the layer count");
    }
    sizes[0].push_back(base);
  }

  std::vector<lsm::trace::Trace> layers;
  layers.reserve(static_cast<std::size_t>(n));
  for (int l = 0; l < n; ++l) {
    layers.emplace_back(trace.name() + ".L" + std::to_string(l),
                        trace.pattern(),
                        std::move(sizes[static_cast<std::size_t>(l)]),
                        trace.types(), trace.tau(), trace.width(),
                        trace.height());
  }
  return layers;
}

LayeredReport run_layered_pipeline(const lsm::trace::Trace& trace,
                                   const LayeredConfig& config,
                                   const sim::FaultPlan& plan,
                                   const sim::ChannelPlan& channel) {
  const std::vector<lsm::trace::Trace> layer_traces =
      split_layers(trace, config);
  const int n = static_cast<int>(layer_traces.size());
  const bool multilayer = n > 1;

  LayeredReport report;
  report.layers.resize(static_cast<std::size_t>(n));
  report.min_active_layers = n;

  // Joint admission pass (capped runs only): smooth every layer, walk the
  // merged breakpoint timeline, and keep the largest decodable prefix
  // that fits the channel-scaled cap on each interval. Uncapped runs skip
  // the pass entirely, which keeps the single-layer uncapped case a pure
  // delegation to run_faulted_pipeline() (the trace-byte identity).
  if (config.channel_cap > 0.0) {
    std::vector<core::RateSchedule> schedules;
    schedules.reserve(static_cast<std::size_t>(n));
    double span_end = 0.0;
    for (int l = 0; l < n; ++l) {
      obs::StreamScope scope(static_cast<std::uint32_t>(l + 1));
      const trace::Trace& layer_trace =
          layer_traces[static_cast<std::size_t>(l)];
      core::PatternEstimator estimator(layer_trace);
      const core::SmoothingResult result = core::smooth(
          layer_trace,
          config.layers[static_cast<std::size_t>(l)].params, estimator,
          core::Variant::kBasic, config.execution_path);
      schedules.push_back(result.schedule());
      span_end = std::max(span_end, schedules.back().end_time());
    }

    // Merge every edge source into one pre-sized vector: fetching the
    // fade/channel edges first lets the reserve cover the exact total, so
    // the inserts below never reallocate mid-merge.
    const std::vector<double> fade_edges =
        plan.fade_breakpoints(0.0, span_end);
    const std::vector<double> channel_edges =
        channel.factor_breakpoints(0.0, span_end);
    std::size_t edge_count = 1 + fade_edges.size() + channel_edges.size();
    for (const core::RateSchedule& schedule : schedules) {
      edge_count += schedule.segments().size() + 1;
    }
    std::vector<double> edges;
    edges.reserve(edge_count);
    edges.push_back(0.0);
    for (const core::RateSchedule& schedule : schedules) {
      const std::vector<double> b = schedule.breakpoints();
      edges.insert(edges.end(), b.begin(), b.end());
    }
    edges.insert(edges.end(), fade_edges.begin(), fade_edges.end());
    edges.insert(edges.end(), channel_edges.begin(), channel_edges.end());
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    for (std::size_t k = 0; k + 1 < edges.size(); ++k) {
      const double t0 = edges[k];
      const double t1 = edges[k + 1];
      double joint = 0.0;
      for (const core::RateSchedule& schedule : schedules) {
        joint += schedule.rate_at(t0);
      }
      if (joint <= 0.0) continue;
      report.joint_peak_demand = std::max(report.joint_peak_demand, joint);
      const double factor =
          std::min(plan.fade_factor_at(t0), channel.factor_at(t0));
      const double cap = config.channel_cap * factor;

      double cumulative = schedules[0].rate_at(t0);
      if (!fits(cumulative, cap)) report.base_overloaded = true;
      int active = 1;  // the base layer always stays
      for (int l = 1; l < n; ++l) {
        cumulative += schedules[static_cast<std::size_t>(l)].rate_at(t0);
        if (!fits(cumulative, cap)) break;
        active = l + 1;
      }
      report.min_active_layers = std::min(report.min_active_layers, active);
      for (int l = active; l < n; ++l) {
        std::vector<ShedWindow>& shed =
            report.layers[static_cast<std::size_t>(l)].shed;
        if (!shed.empty() && shed.back().end == t0) {
          shed.back().end = t1;
          shed.back().demand = std::max(shed.back().demand, joint);
        } else {
          shed.push_back(ShedWindow{t0, t1, joint});
        }
      }
    }

    bool any_shed = false;
    for (int l = 0; l < n; ++l) {
      LayerOutcome& outcome = report.layers[static_cast<std::size_t>(l)];
      obs::StreamTracer tracer(&obs::Tracer::global(),
                               static_cast<std::uint32_t>(l + 1));
      for (const ShedWindow& window : outcome.shed) {
        outcome.shed_time += window.duration();
        ++report.shed_events;
        any_shed = true;
        tracer.emit(obs::EventKind::kLayerShed, 0, window.start,
                    static_cast<double>(l), window.end, window.demand);
      }
    }
    if (any_shed) obs::FlightRecorder::global().trigger("layer_shed");
    if (report.base_overloaded) {
      obs::FlightRecorder::global().trigger("base_layer_overload");
    }
  }

  // Per-layer delivery through the faulted pipeline: each layer gets its
  // own params and Section 4.4 degradation mode, the shared signalling
  // policy, and the same fault/channel plans.
  for (int l = 0; l < n; ++l) {
    const LayerSpec& spec = config.layers[static_cast<std::size_t>(l)];
    FaultedPipelineConfig pipeline_config;
    pipeline_config.base.params = spec.params;
    pipeline_config.base.network_latency = config.network_latency;
    pipeline_config.base.jitter = config.jitter;
    pipeline_config.base.jitter_seed = config.jitter_seed;
    pipeline_config.base.playout_offset = config.playout_offset;
    pipeline_config.base.execution_path = config.execution_path;
    pipeline_config.recovery.retry = config.retry;
    pipeline_config.recovery.mode = spec.mode;
    pipeline_config.recovery.relax_factor = spec.relax_factor;
    pipeline_config.channel = channel;
    pipeline_config.channel_outage_threshold = config.channel_outage_threshold;

    LayerOutcome& outcome = report.layers[static_cast<std::size_t>(l)];
    FaultedPipelineReport result;
    if (multilayer) {
      // Per-layer ambient stream ids keep multi-layer traces attributable;
      // the single-layer run stays in the caller's scope so its trace
      // bytes match run_live_pipeline() exactly.
      obs::StreamScope scope(static_cast<std::uint32_t>(l + 1));
      result = run_faulted_pipeline(layer_traces[static_cast<std::size_t>(l)],
                                    pipeline_config, plan);
    } else {
      result = run_faulted_pipeline(layer_traces[static_cast<std::size_t>(l)],
                                    pipeline_config, plan);
    }
    outcome.report = std::move(result.report);
    outcome.degradation = result.degradation;
    for (const PictureDelivery& delivery : outcome.report.deliveries) {
      for (const ShedWindow& window : outcome.shed) {
        if (window.start <= delivery.sender_start &&
            delivery.sender_start < window.end) {
          ++outcome.pictures_shed;
          break;
        }
      }
    }
  }
  return report;
}

}  // namespace lsm::net
