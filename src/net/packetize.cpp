#include "net/packetize.h"

#include <cmath>

namespace lsm::net {

namespace {

/// Emits the cells of one picture transmitted at a constant rate over
/// [start, start + bits/rate).
void emit_picture(std::vector<Cell>& cells, double start, double rate,
                  std::int64_t bits, int source, int picture) {
  const auto cell_count = static_cast<std::int64_t>(
      (bits + kCellPayloadBits - 1) / kCellPayloadBits);
  for (std::int64_t k = 0; k < cell_count; ++k) {
    // Arrival = transmission completion of the k-th cell's payload.
    const double sent_bits =
        std::min<double>(static_cast<double>((k + 1) * kCellPayloadBits),
                         static_cast<double>(bits));
    cells.push_back(Cell{start + sent_bits / rate, source, picture});
  }
}

}  // namespace

std::vector<Cell> packetize(const core::SmoothingResult& result, int source) {
  std::vector<Cell> cells;
  for (const core::PictureSend& send : result.sends) {
    emit_picture(cells, send.start, send.rate, send.bits, source, send.index);
  }
  return cells;
}

std::vector<Cell> packetize_unsmoothed(const lsm::trace::Trace& trace,
                                       int source) {
  std::vector<Cell> cells;
  for (int i = 1; i <= trace.picture_count(); ++i) {
    const double start = (i - 1) * trace.tau();
    const double rate = static_cast<double>(trace.size_of(i)) / trace.tau();
    emit_picture(cells, start, rate, trace.size_of(i), source, i);
  }
  return cells;
}

void shift_cells(std::vector<Cell>& cells, double offset) {
  for (Cell& cell : cells) cell.time += offset;
}

}  // namespace lsm::net
