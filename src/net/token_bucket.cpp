#include "net/token_bucket.h"

#include <algorithm>
#include <stdexcept>

namespace lsm::net {

double min_bucket_depth(const core::RateSchedule& schedule, double rho) {
  if (rho <= 0.0) throw std::invalid_argument("min_bucket_depth: rho <= 0");
  double backlog = 0.0;
  double peak = 0.0;
  double previous_end = schedule.empty() ? 0.0 : schedule.start_time();
  for (const core::RateSegment& segment : schedule.segments()) {
    // Idle gap before this segment drains the virtual queue.
    backlog = std::max(0.0, backlog - rho * (segment.begin - previous_end));
    const double net = (segment.rate - rho) * (segment.end - segment.begin);
    if (net > 0.0) {
      backlog += net;
      peak = std::max(peak, backlog);
    } else {
      backlog = std::max(0.0, backlog + net);
    }
    previous_end = segment.end;
  }
  return peak;
}

std::vector<BurstinessPoint> burstiness_curve(
    const core::RateSchedule& schedule, const std::vector<double>& rhos) {
  std::vector<BurstinessPoint> curve;
  curve.reserve(rhos.size());
  for (const double rho : rhos) {
    curve.push_back(BurstinessPoint{rho, min_bucket_depth(schedule, rho)});
  }
  return curve;
}

TokenBucket::TokenBucket(double sigma_bits, double rho_bps)
    : sigma_(sigma_bits), rho_(rho_bps), tokens_(sigma_bits) {
  if (sigma_ < 0.0 || rho_ <= 0.0) {
    throw std::invalid_argument("TokenBucket: bad parameters");
  }
}

bool TokenBucket::consume(double time, double bits) {
  if (time < last_time_) {
    throw std::invalid_argument("TokenBucket::consume: time went backwards");
  }
  tokens_ = std::min(sigma_, tokens_ + rho_ * (time - last_time_));
  last_time_ = time;
  if (bits > tokens_ + 1e-9) return false;
  tokens_ -= bits;
  return true;
}

}  // namespace lsm::net
