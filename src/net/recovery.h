// Graceful degradation for the transport pipeline: what the sender does
// when the network says no.
//
// Two pieces live here. RetryPolicy/RecoveryPolicy parameterize the
// response to a denied rate renegotiation — bounded retries with
// exponential backoff, then either late-picture accounting (keep the old
// grant and let delivery slip, the paper's delay ledger made explicit) or
// controlled rate-bound relaxation (briefly request above the planned r_i,
// mirroring the Section 4.4 r_i^U crossing, to drain the backlog a fault
// created). plan_reservation_faulted() replays a plan_reservation()
// schedule against a sim::FaultPlan's denial windows: every reservation
// change is a signalling event the network may refuse; while a request is
// denied the stream draws down its previous grant (whose headroom is the
// over-reservation it already paid for), and a denied *release* simply
// keeps paying for unused capacity. Everything is deterministic: the same
// schedule, policy, and plan produce bitwise-identical results.
#pragma once

#include <vector>

#include "net/renegotiation.h"
#include "sim/channel.h"
#include "sim/fault.h"

namespace lsm::net {

/// Bounded retry with exponential backoff for denied renegotiations.
struct RetryPolicy {
  int max_retries = 4;             ///< re-requests after a denial (>= 0)
  double base_backoff = 0.05;      ///< wait before the first retry, s (> 0)
  double backoff_multiplier = 2.0; ///< growth per retry (>= 1)
  double max_backoff = 1.0;        ///< backoff cap, s (>= base_backoff)

  /// Throws std::invalid_argument on non-finite or out-of-range fields.
  void validate() const;
};

/// What the pipeline does once recovery is exhausted or while it lags.
enum class DegradationMode {
  kLatePicture,      ///< hold the granted rate; account lateness explicitly
  kRateRelaxation,   ///< request up to relax_factor * r_i to catch up
};

struct RecoveryPolicy {
  RetryPolicy retry;
  DegradationMode mode = DegradationMode::kLatePicture;
  /// Max catch-up boost over the planned rate in kRateRelaxation (>= 1;
  /// 1 makes the mode identical to kLatePicture).
  double relax_factor = 1.25;

  /// Throws std::invalid_argument on a bad retry policy or relax_factor.
  void validate() const;
};

/// Outcome of resolving one request against denial windows with backoff.
struct RetryOutcome {
  double grant_time = 0.0;  ///< when the request succeeded (if granted)
  int denied = 0;           ///< attempts the network refused
  bool granted = true;      ///< false when max_retries was exhausted
};

/// Walks a request at `request_time` through `plan`'s denial windows under
/// `retry`: each refusal waits the (exponentially growing, capped) backoff
/// and asks again, at most max_retries times. Pure and deterministic.
RetryOutcome resolve_with_backoff(double request_time,
                                  const RetryPolicy& retry,
                                  const sim::FaultPlan& plan);

/// Channel-aware variant: in addition to `plan`'s denial windows, a
/// request is refused while the block-fading channel sits in an outage
/// state — factor_at(t) <= outage_threshold — because the signalling
/// round-trip shares the faded link with the data. A threshold <= 0
/// disables the coupling; an empty channel plan makes this identical to
/// the three-argument overload. `outage_denials`, when non-null, tallies
/// the refusals attributable to the channel alone (denial windows take
/// precedence in the attribution).
RetryOutcome resolve_with_backoff(double request_time,
                                  const RetryPolicy& retry,
                                  const sim::FaultPlan& plan,
                                  const sim::ChannelPlan& channel,
                                  double outage_threshold,
                                  int* outage_denials = nullptr);

/// One renegotiation request in a faulted reservation replay.
struct GrantRecord {
  double request_time = 0.0;
  double grant_time = 0.0;   ///< == request_time when granted instantly
  core::Rate level = 0.0;    ///< requested reservation level
  int denied_attempts = 0;
  bool gave_up = false;      ///< level never granted within its segment
};

/// plan_reservation() result replayed against denial faults.
struct FaultedReservationResult {
  core::RateSchedule reservation;  ///< R(t) the network actually honored
  std::vector<GrantRecord> grants; ///< one per ideal reservation segment
  int renegotiations = 0;          ///< ideal signalling events attempted
  int denials = 0;                 ///< refusals across all requests
  int retries = 0;                 ///< backoff re-requests issued
  int giveups = 0;                 ///< segments whose level never arrived
  double over_reservation = 0.0;   ///< booked/used - 1 on the honored R(t)
  /// Max over t of r(t) - R(t): capacity the stream needed but did not
  /// hold, > 0 only while a grant was pending or given up.
  double max_shortfall = 0.0;
};

/// Plans the ideal reservation for `schedule` (same contract as
/// plan_reservation) and replays its renegotiations against `plan`'s
/// denial windows under `retry`. After any granted renegotiation,
/// R(t) >= r(t) holds until the next request instant; shortfalls can only
/// open while a grant is pending or abandoned, and are reported. Throws
/// std::invalid_argument on a bad policy, bad retry policy, or empty
/// schedule.
FaultedReservationResult plan_reservation_faulted(
    const core::RateSchedule& schedule, const RenegotiationPolicy& policy,
    const RetryPolicy& retry, const sim::FaultPlan& plan);

}  // namespace lsm::net
