#include "net/admission.h"

#include <algorithm>
#include <stdexcept>

namespace lsm::net {

StreamDescriptor describe_stream(const core::RateSchedule& schedule,
                                 double rho) {
  return StreamDescriptor{min_bucket_depth(schedule, rho), rho};
}

StreamDescriptor describe_cells(const std::vector<Cell>& cells, double rho) {
  if (rho <= 0.0) throw std::invalid_argument("describe_cells: rho <= 0");
  // Virtual queue drained at rho; the required bucket depth is its peak.
  double queue = 0.0;
  double peak = 0.0;
  double last_time = cells.empty() ? 0.0 : cells.front().time;
  for (const Cell& cell : cells) {
    queue = std::max(0.0, queue - rho * (cell.time - last_time));
    queue += kCellPayloadBits;
    peak = std::max(peak, queue);
    last_time = cell.time;
  }
  return StreamDescriptor{peak, rho};
}

AdmissionController::AdmissionController(double capacity_bps,
                                         double buffer_bits)
    : capacity_(capacity_bps), buffer_(buffer_bits) {
  if (!(capacity_ > 0.0) || buffer_ < 0.0) {
    throw std::invalid_argument("AdmissionController: bad link spec");
  }
}

bool AdmissionController::try_admit(const StreamDescriptor& descriptor) {
  if (descriptor.rho <= 0.0 || descriptor.sigma < 0.0) {
    throw std::invalid_argument("try_admit: bad descriptor");
  }
  if (committed_rate_ + descriptor.rho > capacity_ + 1e-9) return false;
  if (committed_burst_ + descriptor.sigma > buffer_ + 1e-9) return false;
  committed_rate_ += descriptor.rho;
  committed_burst_ += descriptor.sigma;
  ++admitted_;
  return true;
}

PolicedCells police_cells(const std::vector<Cell>& cells,
                          const StreamDescriptor& descriptor) {
  // One extra cell of depth absorbs packetization quantization: a fluid
  // schedule conforming to (sigma, rho) emits whole cells whose completion
  // times lead the fluid by at most one payload.
  TokenBucket bucket(descriptor.sigma + kCellPayloadBits, descriptor.rho);
  PolicedCells out;
  out.conforming.reserve(cells.size());
  for (const Cell& cell : cells) {
    if (bucket.consume(cell.time, kCellPayloadBits)) {
      out.conforming.push_back(cell);
    } else {
      ++out.dropped;
    }
  }
  return out;
}

}  // namespace lsm::net
