// Deterministic admission control over (sigma, rho) traffic descriptors.
//
// A stream policed by a token bucket (sigma, rho) contributes at most
// sigma bits of backlog beyond its reserved rate. For a FIFO link of
// capacity C and buffer B, the classical deterministic test admits a set
// of streams when
//
//     sum(rho_i) <= C        (rate feasibility)
//     sum(sigma_i) <= B      (worst-case backlog fits the buffer)
//
// guaranteeing zero loss for conforming traffic. Because lossless smoothing
// collapses a stream's sigma at any rho above its per-pattern peak (see
// token_bucket.h), a link admits far more smoothed streams than raw VBR
// ones at equal (C, B) — the admission-control view of the paper's
// statistical-multiplexing motivation.
#pragma once

#include <vector>

#include "core/schedule.h"
#include "net/packetize.h"
#include "net/token_bucket.h"

namespace lsm::net {

/// A stream's traffic contract.
struct StreamDescriptor {
  double sigma = 0.0;  ///< token-bucket depth, bits
  double rho = 0.0;    ///< sustained rate, bits/s
};

/// Measures the tightest conforming descriptor of `schedule` at drain rate
/// `rho` (sigma = min_bucket_depth).
StreamDescriptor describe_stream(const core::RateSchedule& schedule,
                                 double rho);

/// Measures the tightest conforming descriptor of an actual CELL stream at
/// drain rate `rho`. Strictly larger sigma than the fluid schedule's: each
/// picture's final cell carries padding, so the cell stream's bit rate
/// exceeds the fluid rate it was cut from. Police real cells with this,
/// not with the fluid descriptor.
StreamDescriptor describe_cells(const std::vector<Cell>& cells, double rho);

/// Tracks commitments on one link and admits/rejects streams.
class AdmissionController {
 public:
  /// Throws std::invalid_argument unless capacity > 0 and buffer >= 0.
  AdmissionController(double capacity_bps, double buffer_bits);

  /// Admits the stream iff both tests pass; on admission the resources are
  /// committed.
  bool try_admit(const StreamDescriptor& descriptor);

  int admitted_count() const noexcept { return admitted_; }
  double committed_rate() const noexcept { return committed_rate_; }
  double committed_burst() const noexcept { return committed_burst_; }
  double capacity() const noexcept { return capacity_; }
  double buffer() const noexcept { return buffer_; }

 private:
  double capacity_;
  double buffer_;
  double committed_rate_ = 0.0;
  double committed_burst_ = 0.0;
  int admitted_ = 0;
};

/// Ingress policing: enforces a stream's admitted descriptor at the network
/// edge. Each cell consumes its payload from a (sigma, rho) token bucket;
/// nonconforming cells are dropped — the network's defence that makes the
/// deterministic admission guarantee real.
struct PolicedCells {
  std::vector<Cell> conforming;
  std::int64_t dropped = 0;
};
PolicedCells police_cells(const std::vector<Cell>& cells,
                          const StreamDescriptor& descriptor);

}  // namespace lsm::net
