// Finite-buffer FIFO multiplexer models.
//
// Two granularities:
//  * Cell-level: individual cell arrivals from many sources join one FIFO
//    buffer drained at the service rate; a cell arriving to a full buffer is
//    dropped. This is the ATM switch of the paper's motivation.
//  * Fluid: the aggregate of piecewise-constant rate functions feeds a fluid
//    queue; overflow volume is lost. Orders of magnitude faster, used for
//    wide parameter sweeps.
//
// Both report the loss ratio as a function of buffer size and utilization —
// the statistical-multiplexing-gain experiments (refs [10, 11]).
#pragma once

#include <vector>

#include "core/schedule.h"
#include "net/packetize.h"

namespace lsm::net {

struct MuxConfig {
  double service_rate_bps = 10e6;  ///< output link capacity
  int buffer_cells = 100;          ///< FIFO capacity in cells (>= 1)
};

struct MuxResult {
  std::int64_t arrived = 0;
  std::int64_t dropped = 0;
  double loss_ratio = 0.0;         ///< dropped / arrived
  double max_backlog_cells = 0.0;  ///< peak occupancy observed
  double mean_backlog_cells = 0.0; ///< time-average occupancy
  std::vector<std::int64_t> dropped_by_source;
  std::vector<std::int64_t> arrived_by_source;
};

/// Simulates the cell multiplexer. Each inner vector holds one source's
/// cells (each sorted by time; sources are merged). The buffer drains
/// continuously at the service rate (one cell every kCellPayloadBits /
/// service_rate seconds).
MuxResult simulate_cell_mux(const std::vector<std::vector<Cell>>& sources,
                            const MuxConfig& config);

struct FluidMuxConfig {
  double service_rate_bps = 10e6;
  double buffer_bits = 1e6;
  double step = 1e-3;  ///< integration step, seconds
};

struct FluidMuxResult {
  double offered_bits = 0.0;
  double lost_bits = 0.0;
  double loss_ratio = 0.0;
  double max_backlog_bits = 0.0;
};

/// Fluid approximation over the union of all schedules' time spans.
FluidMuxResult simulate_fluid_mux(
    const std::vector<core::RateSchedule>& sources,
    const FluidMuxConfig& config);

}  // namespace lsm::net
