// Layered joint smoothing: one video as K dependent sub-streams under a
// shared channel cap.
//
// Scalable content ships as a base layer plus enhancement layers that are
// only decodable when every lower layer arrived (PAPERS.MD's P2P layered
// playout smoothing and SVC QoE work). This module splits one picture
// trace into K sub-streams by an exact per-picture bit partition, smooths
// every layer with its own (D, K, H) — the paper's algorithm per layer —
// and runs a joint admission pass over the combined rate demand: whenever
// the shared cap (scaled by the block-fading channel and any fade
// windows, min rule) cannot carry all layers, enhancement layers are shed
// highest-priority-index first, preserving the decodability prefix. The
// base layer is never shed; if the cap cannot even carry the base, each
// layer's own Section 4.4 DegradationMode governs how its delivery
// degrades inside the faulted pipeline.
//
// Identity contract (the differential suites pin it): a single-layer,
// uncapped config with an empty FaultPlan and an empty ChannelPlan
// reproduces run_live_pipeline() bitwise — schedule, report fields, and
// canonical trace bytes — because split_layers() returns the input trace
// verbatim and the run delegates to run_faulted_pipeline(), whose own
// zero-intensity identity closes the argument (DESIGN.md §3.8).
#pragma once

#include <cstdint>
#include <vector>

#include "net/transport.h"
#include "sim/channel.h"
#include "sim/fault.h"

namespace lsm::net {

/// Hard upper bound on layers per video: real SVC deployments use 2-4;
/// anything past 8 is a configuration error, not ambition.
inline constexpr int kMaxLayers = 8;

/// One sub-stream's smoothing and degradation parameters.
struct LayerSpec {
  /// Per-layer smoothing parameters (D, K, H; tau must match the trace).
  core::SmootherParams params;
  /// Decodability priority: 0 is the base layer; must be strictly
  /// increasing across LayeredConfig::layers (the shed order).
  int priority = 0;
  /// Section 4.4 response of this layer when the channel lags its plan.
  DegradationMode mode = DegradationMode::kLatePicture;
  double relax_factor = 1.25;  ///< kRateRelaxation boost cap (>= 1)
  /// Relative bit share of the layer; <= 0 selects the default geometric
  /// split (layer l gets weight 2^-l before normalization). Either every
  /// layer sets a positive weight or none does.
  double weight = 0.0;
};

/// Joint configuration for one layered video.
struct LayeredConfig {
  std::vector<LayerSpec> layers;  ///< size in [1, kMaxLayers]
  /// Shared channel cap in bits/s for the *sum* of layer rates; 0 means
  /// uncapped (no joint admission pass, nothing is ever shed).
  double channel_cap = 0.0;
  double network_latency = 0.010;
  double jitter = 0.0;
  std::uint64_t jitter_seed = 1;
  double playout_offset = 0.0;  ///< 0 selects each layer's Theorem 1 bound
  core::ExecutionPath execution_path = core::ExecutionPath::kAuto;
  RetryPolicy retry;  ///< shared signalling policy for every layer
  double channel_outage_threshold = 0.0;

  /// Throws std::invalid_argument on an invalid layer count, non-monotone
  /// priorities, invalid per-layer D/K/H/tau (including NaN or negative
  /// values), bad weights (NaN, negative, or mixed set/unset), bad
  /// relax_factor, or bad shared fields.
  void validate() const;
};

/// Splits `trace` into one sub-trace per configured layer: every
/// picture's bits are partitioned exactly (sum of layer sizes equals the
/// original size, every layer gets >= 1 bit), deterministically from the
/// weights alone. Layer traces share the input's pattern, types, and tau;
/// names gain a ".L<index>" suffix. Throws std::invalid_argument (via
/// validate(), or when a picture has fewer bits than there are layers).
std::vector<lsm::trace::Trace> split_layers(const lsm::trace::Trace& trace,
                                            const LayeredConfig& config);

/// One interval during which joint admission shed a layer.
struct ShedWindow {
  double start = 0.0;
  double end = 0.0;
  double demand = 0.0;  ///< peak joint demand (bps) over the window

  double duration() const noexcept { return end - start; }
};

/// Per-layer outcome: the layer's own faulted-pipeline result plus what
/// joint admission did to it.
struct LayerOutcome {
  PipelineReport report;
  runtime::DegradationCounters degradation;
  std::vector<ShedWindow> shed;     ///< merged maximal shed windows
  std::uint64_t pictures_shed = 0;  ///< sends starting inside a shed window
  double shed_time = 0.0;           ///< total seconds the layer was shed
};

struct LayeredReport {
  std::vector<LayerOutcome> layers;  ///< one per configured layer
  /// Max over time of the summed per-layer planned rates (bps).
  double joint_peak_demand = 0.0;
  /// Smallest decodable prefix the admission pass ever kept (== layer
  /// count when nothing was shed or the run is uncapped).
  int min_active_layers = 0;
  std::uint64_t shed_events = 0;  ///< maximal shed windows across layers
  /// True when the effective cap dropped below even the base layer's
  /// demand somewhere (the base still runs; its DegradationMode absorbs
  /// the shortfall inside the pipeline).
  bool base_overloaded = false;
};

/// Smooths and delivers every layer of `trace` under `config`, with
/// `plan`'s faults and `channel`'s block fading injected into each
/// layer's pipeline and the joint admission pass. Deterministic:
/// identical inputs yield a bitwise-identical report.
LayeredReport run_layered_pipeline(const lsm::trace::Trace& trace,
                                   const LayeredConfig& config,
                                   const sim::FaultPlan& plan = {},
                                   const sim::ChannelPlan& channel = {});

}  // namespace lsm::net
