#include "net/wfq.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

namespace lsm::net {

WfqResult simulate_wfq(const std::vector<std::vector<Cell>>& sources,
                       const WfqConfig& config) {
  const std::size_t n = sources.size();
  if (config.weights.size() != n) {
    throw std::invalid_argument("simulate_wfq: weights/sources mismatch");
  }
  if (config.service_rate_bps <= 0.0 || config.buffer_cells_per_queue < 1) {
    throw std::invalid_argument("simulate_wfq: bad config");
  }
  for (const int w : config.weights) {
    if (w < 1) {
      throw std::invalid_argument("simulate_wfq: weights must be >= 1");
    }
  }

  const double cell_time =
      static_cast<double>(kCellPayloadBits) / config.service_rate_bps;

  WfqResult result;
  result.arrived_by_source.assign(n, 0);
  result.served_by_source.assign(n, 0);
  result.dropped_by_source.assign(n, 0);
  result.mean_delay_by_source.assign(n, 0.0);
  result.max_delay_by_source.assign(n, 0.0);

  std::vector<std::size_t> next_arrival(n, 0);
  std::vector<std::deque<double>> queue(n);  // arrival instants of queued cells

  double now = 0.0;
  // Admits every cell with arrival time <= t.
  auto admit_until = [&](double t) {
    for (std::size_t s = 0; s < n; ++s) {
      while (next_arrival[s] < sources[s].size() &&
             sources[s][next_arrival[s]].time <= t + 1e-15) {
        ++result.arrived_by_source[s];
        if (static_cast<int>(queue[s].size()) >=
            config.buffer_cells_per_queue) {
          ++result.dropped_by_source[s];
        } else {
          queue[s].push_back(sources[s][next_arrival[s]].time);
        }
        ++next_arrival[s];
      }
    }
  };
  auto earliest_pending = [&]() {
    double t = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < n; ++s) {
      if (next_arrival[s] < sources[s].size()) {
        t = std::min(t, sources[s][next_arrival[s]].time);
      }
    }
    return t;
  };
  auto any_backlog = [&]() {
    for (const auto& q : queue) {
      if (!q.empty()) return true;
    }
    return false;
  };

  // Weighted round robin: while backlogged, queue s may send up to
  // weights[s] cells per round.
  std::size_t current = 0;
  int credit = config.weights.empty() ? 0 : config.weights[0];

  while (true) {
    admit_until(now);
    if (!any_backlog()) {
      const double next = earliest_pending();
      if (!std::isfinite(next)) break;  // drained everything
      now = std::max(now, next);
      continue;
    }
    // Find the next queue entitled and able to send (the loop terminates
    // because some queue is backlogged).
    std::size_t guard = 0;
    while (credit == 0 || queue[current].empty()) {
      current = (current + 1) % n;
      credit = config.weights[current];
      if (++guard > 2 * n) {
        break;  // unreachable: a backlogged queue exists (checked above)
      }
    }
    if (queue[current].empty()) continue;  // defensive against the guard
    const double arrival = queue[current].front();
    queue[current].pop_front();
    --credit;
    const double depart = now + cell_time;
    const double delay = depart - arrival;
    ++result.served_by_source[current];
    result.mean_delay_by_source[current] += delay;
    result.max_delay_by_source[current] =
        std::max(result.max_delay_by_source[current], delay);
    now = depart;
  }

  std::int64_t arrived_total = 0;
  std::int64_t dropped_total = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (result.served_by_source[s] > 0) {
      result.mean_delay_by_source[s] /=
          static_cast<double>(result.served_by_source[s]);
    }
    arrived_total += result.arrived_by_source[s];
    dropped_total += result.dropped_by_source[s];
  }
  if (arrived_total > 0) {
    result.loss_ratio = static_cast<double>(dropped_total) /
                        static_cast<double>(arrived_total);
  }
  return result;
}

}  // namespace lsm::net
